// Differential property test: randomly generated structured kernels must
// produce bit-identical global memory on the cycle-level RTL model and the
// functional SIMT emulator. This is the invariant the two-level methodology
// rests on (a syndrome measured at RTL is meaningful at software level only
// if the two levels agree fault-free).
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "emu/device.hpp"
#include "isa/isa.hpp"
#include "rtl/sm.hpp"

namespace gpufi {
namespace {

using namespace gpufi::isa;

/// Generates a random structured kernel over registers R0..R11 with FP in
/// R4..R7, INT in R0..R3, addresses derived from the thread id, bounded
/// loops and nested ifs, shared-memory staging and a final store of every
/// live register.
class KernelFuzzer {
 public:
  explicit KernelFuzzer(std::uint64_t seed) : rng_(seed) {}

  Program generate(unsigned out_words) {
    KernelBuilder kb("fuzz");
    kb.shared(64);
    kb.mov(0, S(SReg::TID_X));                  // R0 = tid (kept)
    kb.imad(1, R(0), I(7), I(3));               // R1 int
    kb.xor_(2, R(0), I(0x5a5a));                // R2 int
    kb.movi(3, 1);                              // R3 int
    kb.i2f(4, R(0));                            // R4 fp
    kb.fmul(5, R(4), F(0.37f));                 // R5 fp
    kb.movf(6, 1.25f);                          // R6 fp
    kb.fadd(7, R(5), F(-3.5f));                 // R7 fp
    // Stage something in shared memory so LDS/STS and BAR are exercised.
    kb.sts(R(0), R(1));
    kb.bar();
    emit_block(kb, 3, 8);
    // Store the live registers.
    for (unsigned r = 1; r <= 7; ++r) {
      kb.imad(8, R(0), I(8), I(static_cast<std::int32_t>(r)));
      kb.gst(R(8), R(static_cast<std::uint8_t>(r)));
    }
    (void)out_words;
    return kb.build();
  }

 private:
  void emit_block(KernelBuilder& kb, unsigned depth, unsigned len) {
    for (unsigned i = 0; i < len; ++i) {
      switch (rng_.below(depth > 0 ? 10 : 8)) {
        // depth == 0: only cases 0..7 (no divergence) are generated.
        case 0:
          kb.iadd(pick_int(), R(pick_int()), I(imm_i()));
          break;
        case 1:
          kb.imad(pick_int(), R(pick_int()), I(imm_i() | 1), R(pick_int()));
          break;
        case 2:
          kb.fadd(pick_fp(), R(pick_fp()), F(imm_f()));
          break;
        case 3:
          kb.ffma(pick_fp(), R(pick_fp()), F(imm_f()), R(pick_fp()));
          break;
        case 4: {  // shared round-trip keyed by tid
          kb.and_(9, R(pick_int()), I(63));
          kb.sts(R(0), R(pick_int()));
          kb.bar();
          kb.lds(pick_int(), R(9));
          break;
        }
        case 5:
          kb.shr(pick_int(), R(pick_int()), I(rng_.range(0, 7)));
          break;
        case 6: {  // select
          kb.isetp(1, CmpOp::GT, R(pick_int()), I(imm_i()));
          kb.sel(pick_int(), R(pick_int()), R(pick_int()), 1);
          break;
        }
        case 7:
          kb.fmnmx(pick_fp(), R(pick_fp()), R(pick_fp()));
          break;
        case 8: {  // divergent if/else on a thread-dependent predicate
          kb.and_(9, R(0), I(static_cast<std::int32_t>(rng_.range(1, 31))));
          kb.isetp(0, CmpOp::NE, R(9), I(0));
          kb.if_begin(0);
          emit_straight(kb, 1 + static_cast<unsigned>(rng_.below(3)));
          if (rng_.chance(0.5)) {
            kb.else_begin();
            emit_straight(kb, 1 + static_cast<unsigned>(rng_.below(3)));
          }
          kb.if_end();
          break;
        }
        case 9: {  // bounded data-dependent loop
          // Trip counts limited to 0..3: each distinct exit iteration holds
          // a reconvergence-stack entry, and the RTL model's hardware stack
          // is 8 deep (the emulator allows 64) — kernels must fit the
          // hardware budget, exactly as compiled CUDA must.
          kb.and_(10, R(0), I(3));
          kb.movi(11, 0);
          kb.loop_begin();
          kb.isetp(2, CmpOp::LT, R(11), R(10));
          kb.loop_while(2);
          emit_straight(kb, 1 + static_cast<unsigned>(rng_.below(2)));
          kb.iadd(11, R(11), I(1));
          kb.loop_end();
          break;
        }
      }
    }
  }

  /// Straight-line body (no further divergence) for nested regions, so
  /// worst-case stack depth stays within the hardware's 8 entries.
  void emit_straight(KernelBuilder& kb, unsigned len) {
    emit_block(kb, 0, len);
  }

  std::uint8_t pick_int() { return static_cast<std::uint8_t>(rng_.range(1, 3)); }
  std::uint8_t pick_fp() { return static_cast<std::uint8_t>(rng_.range(4, 7)); }
  std::int32_t imm_i() { return static_cast<std::int32_t>(rng_.range(-99, 99)); }
  float imm_f() { return static_cast<float>(rng_.uniform(-4.0, 4.0)); }

  Rng rng_;
};

class CrossLevelFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CrossLevelFuzz, RtlAndEmulatorAgreeBitForBit) {
  KernelFuzzer fuzz(GetParam());
  constexpr unsigned kWords = 64 * 8 + 16;
  const Program p = fuzz.generate(kWords);

  emu::Device dev(kWords);
  const auto er = dev.launch(p, emu::LaunchDims{1, 1, 64, 1});
  ASSERT_EQ(er.status, emu::LaunchStatus::Ok) << er.trap_reason;

  rtl::Sm sm(kWords);
  const auto rr = sm.run(p, rtl::GridDims{1, 1, 64, 1});
  ASSERT_EQ(rr.status, rtl::RunStatus::Ok) << rr.trap_reason;

  for (std::uint32_t a = 0; a < kWords; ++a)
    ASSERT_EQ(sm.read_word(a), dev.read_word(a))
        << "addr " << a << " seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, CrossLevelFuzz,
                         ::testing::Range<std::uint64_t>(1, 41));

// The same programs must also be deterministic per level.
class EmuDeterminismFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EmuDeterminismFuzz, TwoRunsAgree) {
  KernelFuzzer fuzz(GetParam() * 7919);
  constexpr unsigned kWords = 64 * 8 + 16;
  const Program p = fuzz.generate(kWords);
  emu::Device a(kWords), b(kWords);
  ASSERT_EQ(a.launch(p, emu::LaunchDims{1, 1, 64, 1}).status,
            emu::LaunchStatus::Ok);
  ASSERT_EQ(b.launch(p, emu::LaunchDims{1, 1, 64, 1}).status,
            emu::LaunchStatus::Ok);
  for (std::uint32_t w = 0; w < kWords; ++w)
    ASSERT_EQ(a.read_word(w), b.read_word(w));
}

INSTANTIATE_TEST_SUITE_P(Seeds, EmuDeterminismFuzz,
                         ::testing::Range<std::uint64_t>(1, 11));

}  // namespace
}  // namespace gpufi
