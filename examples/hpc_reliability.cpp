// HPC reliability study: evaluates one Rodinia-class application (Hotspot,
// the paper's most masking-heavy code) against the full RTL syndrome
// database, reporting the PVF gap between the naive bit-flip model and the
// RTL-derived relative-error model, and where the surviving errors come
// from.
//
// The syndrome database is built once and cached under gpufi_data/.
#include <cstdio>

#include "apps/apps.hpp"
#include "core/gpufi.hpp"
#include "emu/profiler.hpp"
#include "swfi/swfi.hpp"

using namespace gpufi;

int main() {
  std::printf("building/loading the RTL syndrome database...\n");
  const auto db = core::ensure_syndrome_database("gpufi_data/syndromes.db");

  auto h = apps::make_hotspot(32, 8);

  // Profile the application first, as NVBitFI's profile pass does.
  emu::Device dev(h.app.device_words);
  emu::Profiler prof;
  if (!h.app.run(dev, &prof) || !h.validate(dev)) {
    std::printf("golden run failed\n");
    return 1;
  }
  std::printf("\n%s: %llu dynamic thread-instructions, %.0f%% in the 12 "
              "characterized opcodes\n",
              h.app.name.c_str(),
              static_cast<unsigned long long>(prof.total()),
              100 * prof.characterized_fraction());

  for (auto model :
       {swfi::FaultModel::SingleBitFlip, swfi::FaultModel::DoubleBitFlip,
        swfi::FaultModel::RelativeError}) {
    swfi::Config cfg;
    cfg.model = model;
    cfg.db = &db;
    cfg.n_injections = 300;
    cfg.seed = 17;
    const auto r = swfi::run_sw_campaign(h.app, cfg);
    std::printf("  %-16s: PVF %.3f +- %.3f   (SDC %zu / masked %zu / DUE %zu)\n",
                std::string(fault_model_name(model)).c_str(), r.pvf(),
                r.margin_of_error(), r.sdc, r.masked, r.due);
  }

  std::printf(
      "\nHotspot masks a large share of injected faults: each CTA computes\n"
      "an 8x8 pyramid block but commits only the 4x4 interior, so faults in\n"
      "the discarded halo computation vanish. The RTL syndrome's larger\n"
      "relative errors survive the remaining numeric masking more often\n"
      "than single bit-flips — the paper's 48%% underestimation headline.\n");
  return 0;
}
