// Quickstart: the two-level fault-injection flow end to end, in miniature.
//
//   1. Characterize an instruction at RTL (FlexGripPlus-style model):
//      inject transient bit flips into the FP32 unit while a micro-benchmark
//      runs, and collect the fault syndromes (relative output errors).
//   2. Build the syndrome database and fit the power law (Eq. 1).
//   3. Replay the syndromes at software level (NVBitFI-style) on a SAXPY
//      kernel running on the fast SIMT emulator, and compare with the
//      traditional single-bit-flip model.
//
// Build & run:  cmake -B build -G Ninja && cmake --build build
//               ./build/examples/quickstart
#include <cstdio>

#include "rtlfi/campaign.hpp"
#include "rtlfi/microbench.hpp"
#include "swfi/swfi.hpp"
#include "syndrome/syndrome.hpp"

using namespace gpufi;

int main() {
  // --- 1. RTL characterization of FFMA (Medium input range) -------------
  std::printf("== RTL characterization of FFMA (FP32 unit, M inputs)\n");
  const auto micro = rtlfi::make_microbenchmark(
      isa::Opcode::FFMA, rtlfi::InputRange::Medium, /*value_seed=*/1);
  rtlfi::CampaignConfig campaign;
  campaign.module = rtl::Module::Fp32Fu;
  campaign.n_faults = 2000;
  campaign.seed = 7;
  const auto result = rtlfi::run_campaign(micro, campaign);
  std::printf("  %zu faults: %zu masked, %zu SDC (%zu multi-thread), "
              "%zu DUE  (AVF %.2f%% +- %.2f%%)\n",
              result.injected, result.masked,
              result.sdc_single + result.sdc_multi, result.sdc_multi,
              result.due, 100 * result.avf(),
              100 * result.margin_of_error());

  // --- 2. Syndrome database ---------------------------------------------
  syndrome::Database db;
  const syndrome::Key key{rtl::Module::Fp32Fu, isa::Opcode::FFMA,
                          rtlfi::InputRange::Medium};
  db.add_campaign(key, result);
  db.finalize();
  const auto* dist = db.find(key);
  std::printf("== syndrome database: %zu relative-error samples, median %.3g\n",
              dist->count(), dist->median());
  if (dist->power_law())
    std::printf("  power law fit: alpha=%.2f, x_min=%.2g (Eq. 1 sampler)\n",
                dist->power_law()->alpha, dist->power_law()->x_min);

  // --- 3. Software-level injection on a SAXPY kernel --------------------
  std::printf("== software fault injection on SAXPY (1024 elements)\n");
  constexpr unsigned kN = 1024;
  swfi::App app;
  app.name = "saxpy";
  app.device_words = 3 * kN + 64;
  app.run = [](emu::Device& dev, emu::InstrumentHook* hook) {
    for (unsigned i = 0; i < kN; ++i) {
      dev.write_float(i, 0.001f * static_cast<float>(i));
      dev.write_float(kN + i, 2.0f - 0.003f * static_cast<float>(i));
    }
    using namespace isa;
    KernelBuilder kb("saxpy");
    kb.mov(0, S(SReg::TID_X));
    kb.mov(1, S(SReg::CTAID_X));
    kb.imad(2, R(1), S(SReg::NTID_X), R(0));  // global index
    kb.iadd(3, R(2), S(SReg::PARAM0));
    kb.gld(4, R(3));                          // x
    kb.iadd(3, R(2), S(SReg::PARAM1));
    kb.gld(5, R(3));                          // y
    kb.ffma(6, R(4), F(1.75f), R(5));         // a*x + y
    kb.iadd(3, R(2), S(SReg::PARAM2));
    kb.gst(R(3), R(6));
    Program p = kb.build();
    p.params = {0, kN, 2 * kN, 0, 0, 0, 0, 0};
    emu::LaunchConfig cfg;
    cfg.hook = hook;
    cfg.oob_wraps = true;
    return dev.launch(p, emu::LaunchDims{kN / 256, 1, 256, 1}, cfg)
               .status == emu::LaunchStatus::Ok;
  };
  app.read_output = [](const emu::Device& dev) {
    std::vector<std::uint32_t> out(kN);
    dev.copy_out(2 * kN, out.data(), kN);
    return out;
  };

  for (auto model :
       {swfi::FaultModel::SingleBitFlip, swfi::FaultModel::RelativeError}) {
    swfi::Config cfg;
    cfg.model = model;
    cfg.db = &db;
    cfg.n_injections = 400;
    cfg.seed = 9;
    const auto r = swfi::run_sw_campaign(app, cfg);
    std::printf("  %-16s: PVF %.3f (%zu SDC, %zu masked, %zu DUE)\n",
                std::string(fault_model_name(model)).c_str(), r.pvf(),
                r.sdc, r.masked, r.due);
  }
  std::printf(
      "\nThe relative-error model (RTL syndromes) is the paper's more\n"
      "realistic replacement for the naive single bit-flip.\n");
  return 0;
}
