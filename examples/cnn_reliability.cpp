// CNN reliability study: LeNet under the three fault models of Sec. VI —
// single bit-flip, RTL relative-error syndrome, and the t-MxM tile
// corruption (the scheduler-class multi-element fault that single-thread
// models cannot represent). Reports the tolerable-vs-critical SDC split.
//
// Trained weights and the syndrome database are cached under gpufi_data/.
#include <cstdio>

#include "core/gpufi.hpp"
#include "nn/gpu_infer.hpp"

using namespace gpufi;

int main() {
  std::printf("loading syndrome database and trained LeNet...\n");
  const auto db = core::ensure_syndrome_database("gpufi_data/syndromes.db");
  const auto models = core::ensure_models("gpufi_data");
  std::printf("LeNet holdout accuracy: %.1f%%  (%zu parameters)\n\n",
              100 * models.lenet_accuracy, models.lenet.total_params());

  for (auto model : {nn::CnnFaultModel::SingleBitFlip,
                     nn::CnnFaultModel::RelativeError,
                     nn::CnnFaultModel::TiledMxM}) {
    const auto r = nn::run_cnn_campaign(models.lenet,
                                        nn::CnnTask::Classification, model,
                                        &db, 120, 23);
    std::printf("%-16s: PVF %.3f, critical (misclassification) %.3f",
                std::string(cnn_fault_model_name(model)).c_str(), r.pvf(),
                r.critical_rate());
    if (r.sdc > 0)
      std::printf("  [%zu of %zu SDCs critical]",
                  static_cast<std::size_t>(r.critical), r.sdc);
    std::printf("\n");
  }

  std::printf(
      "\nThe paper's CNN finding: single-thread fault models (bit-flip,\n"
      "relative error) rarely change LeNet's decision — ReLU and max-pool\n"
      "absorb them — while the t-MxM tile corruption (the footprint of a\n"
      "real scheduler fault) corrupts a large fraction of a small layer\n"
      "and causes misclassifications. Hardening should therefore target\n"
      "the scheduler/control structures.\n");
  return 0;
}
