// Custom-kernel RTL injection: write your own SASS-like kernel with the
// KernelBuilder DSL, run it on the cycle-level SM model, and bombard a
// module of your choice with transient faults — the workflow for
// characterizing an instruction sequence the library does not ship.
#include <cstdio>

#include "rtlfi/campaign.hpp"

using namespace gpufi;
using namespace gpufi::isa;

int main() {
  // Kernel: out[i] = sin(x[i]) * sin(x[i]) + cos-ish chain, 64 threads.
  rtlfi::Workload w;
  w.name = "sin-square";
  KernelBuilder kb(w.name);
  kb.mov(0, S(SReg::TID_X));
  kb.iadd(1, R(0), S(SReg::PARAM0));
  kb.gld(2, R(1));        // x
  kb.fsin(3, R(2));       // sin(x)   (SFU)
  kb.fmul(4, R(3), R(3)); // sin^2    (FP32 unit)
  kb.iadd(1, R(0), S(SReg::PARAM1));
  kb.gst(R(1), R(4));
  w.program = kb.build();
  w.program.params = {0, 64, 0, 0, 0, 0, 0, 0};
  w.dims = rtl::GridDims{1, 1, 64, 1};
  w.out_base = 64;
  w.out_words = 64;
  w.thread_modulo = 64;
  w.setup = [](rtl::Sm& sm) {
    Rng rng(5);
    for (unsigned i = 0; i < 64; ++i)
      sm.write_float(i, static_cast<float>(rng.uniform(0.0, 1.5707)));
    sm.fill(64, 64, 0);
  };

  std::printf("module                    AVF-SDC  AVF-DUE  multi-thr\n");
  for (auto module : {rtl::Module::Fp32Fu, rtl::Module::Sfu,
                      rtl::Module::SfuCtl, rtl::Module::Scheduler,
                      rtl::Module::PipelineRegs}) {
    rtlfi::CampaignConfig cfg;
    cfg.module = module;
    cfg.n_faults = 1200;
    cfg.seed = 3;
    const auto r = rtlfi::run_campaign(w, cfg);
    std::printf("%-25s %6.2f%%  %6.2f%%  %6.1f%%\n",
                std::string(rtl::module_name(module)).c_str(),
                100 * r.avf_sdc(), 100 * r.avf_due(),
                100 * r.multi_fraction());
  }
  std::printf(
      "\nEvery flip-flop of Table I's modules is addressable; the detailed\n"
      "records name the exact field each SDC came from (see\n"
      "rtlfi::CampaignResult::records).\n");
  return 0;
}
