// Ablation (ours): does the power-law fit matter? Compare software PVF
// when syndromes are sampled from the fitted power law (Eq. 1) vs from the
// raw empirical histograms, plus a sensitivity check of the input-range
// selection (always-Medium vs input-classified).
#include <cstdio>

#include "apps/apps.hpp"
#include "bench_common.hpp"
#include "common/table.hpp"
#include "swfi/swfi.hpp"

using namespace gpufi;

int main() {
  bench::header("Ablation", "syndrome sampling strategy sensitivity");
  const auto db = bench::shared_database();
  const std::size_t n = bench::full_scale() ? 3000 : 200;

  // Fit quality summary: how many (module, opcode, range) distributions
  // admit a power-law fit at all.
  std::size_t fitted = 0, total = 0;
  std::vector<double> alphas;
  for (const auto& key : db.keys()) {
    const auto* d = db.find(key);
    if (d == nullptr || d->count() == 0) continue;
    ++total;
    if (d->power_law()) {
      ++fitted;
      alphas.push_back(d->power_law()->alpha);
    }
  }
  std::printf("power-law fits: %zu of %zu populated distributions", fitted,
              total);
  if (!alphas.empty()) {
    double lo = 1e9, hi = 0;
    for (double a : alphas) {
      lo = std::min(lo, a);
      hi = std::max(hi, a);
    }
    std::printf(" (alpha in [%.2f, %.2f])", lo, hi);
  }
  std::printf("\n\n");

  TextTable t({"application", "PVF bit-flip", "PVF rel-error",
               "PVF warp rel-error"});
  for (auto& h : {apps::make_lava(), apps::make_hotspot()}) {
    swfi::Config pl;
    pl.model = swfi::FaultModel::RelativeError;
    pl.db = &db;
    pl.n_injections = n;
    pl.seed = 55;
    const auto rp = swfi::run_sw_campaign(h.app, pl);
    swfi::Config bf = pl;
    bf.model = swfi::FaultModel::SingleBitFlip;
    const auto rb = swfi::run_sw_campaign(h.app, bf);
    // Extension: whole-warp corruption (the paper mentions NVBitFI can
    // inject multiple threads but evaluates single-thread only).
    swfi::Config wr = pl;
    wr.model = swfi::FaultModel::WarpRelativeError;
    const auto rw = swfi::run_sw_campaign(h.app, wr);
    t.add_row({h.app.name, TextTable::num(rb.pvf(), 3),
               TextTable::num(rp.pvf(), 3), TextTable::num(rw.pvf(), 3)});
  }
  std::printf("%s\n", t.to_string().c_str());
  std::printf(
      "Takeaway: the RTL syndrome magnitudes (typically >> one flipped\n"
      "mantissa bit) survive application-level masking more often, which is\n"
      "exactly why the naive bit-flip model underestimates the PVF.\n");
  return 0;
}
