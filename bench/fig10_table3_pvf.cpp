// Fig. 10 + Table III (HPC rows): SDC Program Vulnerability Factor of the
// six HPC applications under the traditional single-bit-flip model vs the
// RTL-derived relative-error syndrome model — the headline result that
// bit-flip injection underestimates the PVF (up to 48%, 18% on average in
// the paper).
#include <cstdio>

#include "apps/apps.hpp"
#include "bench_common.hpp"
#include "common/table.hpp"
#include "swfi/swfi.hpp"

using namespace gpufi;

int main() {
  bench::header("Fig. 10 / Table III (HPC)",
                "SDC PVF: single bit-flip vs RTL relative-error syndrome");
  const auto db = bench::shared_database();
  const std::size_t n = bench::sw_injections();

  TextTable t({"application", "PVF bit-flip", "PVF rel-error", "underest.",
               "DUE bf", "DUE rel", "+-95%"});
  double worst = 0, sum = 0;
  unsigned count = 0;
  for (auto& h : apps::all_hpc_apps()) {
    swfi::Config bf;
    bf.model = swfi::FaultModel::SingleBitFlip;
    bf.n_injections = n;
    bf.seed = 101;
    const auto rb = swfi::run_sw_campaign(h.app, bf);

    swfi::Config re;
    re.model = swfi::FaultModel::RelativeError;
    re.db = &db;
    re.n_injections = n;
    re.seed = 102;
    const auto rr = swfi::run_sw_campaign(h.app, re);

    const double under =
        rr.pvf() > 0 ? (rr.pvf() - rb.pvf()) / rr.pvf() : 0.0;
    worst = std::max(worst, under);
    sum += under;
    ++count;
    t.add_row({h.app.name, TextTable::num(rb.pvf(), 3),
               TextTable::num(rr.pvf(), 3), TextTable::pct(under),
               TextTable::pct(rb.due_rate()), TextTable::pct(rr.due_rate()),
               TextTable::pct(rr.margin_of_error())});
  }
  std::printf("%s\n", t.to_string().c_str());
  std::printf(
      "bit-flip underestimation: worst %.1f%%, average %.1f%% (paper: up to\n"
      "48%%, 18%% on average, with the syndrome PVF >= bit-flip PVF for\n"
      "every code; paper Table III bit-flip PVFs: MxM 1.0, Lava 0.69,\n"
      "Quicksort 0.94, Hotspot 0.25, Gaussian 0.82, LUD 0.95).\n",
      100 * worst, 100 * sum / count);
  return 0;
}
