// Fig. 3: dynamic instruction profile of every evaluated application —
// shares of FP32, INT32, special-function, memory and control instructions
// among the RTL-characterized opcodes, plus "Others".
#include <cstdio>

#include "apps/apps.hpp"
#include "bench_common.hpp"
#include "common/table.hpp"
#include "emu/profiler.hpp"
#include "nn/gpu_infer.hpp"

using namespace gpufi;

namespace {

void add_row(TextTable& t, const std::string& name,
             const emu::Profiler& prof) {
  using isa::OpClass;
  t.add_row({name, TextTable::pct(prof.class_fraction(OpClass::Fp32)),
             TextTable::pct(prof.class_fraction(OpClass::Int32)),
             TextTable::pct(prof.class_fraction(OpClass::Special)),
             TextTable::pct(prof.class_fraction(OpClass::Memory)),
             TextTable::pct(prof.class_fraction(OpClass::Control)),
             TextTable::pct(prof.class_fraction(OpClass::Other)),
             TextTable::pct(prof.characterized_fraction())});
}

}  // namespace

int main() {
  bench::header("Fig. 3", "application instruction profiles");
  TextTable t({"application", "FP32", "INT32", "SFU", "Mem(GLD/GST)",
               "Ctrl(BRA/ISET)", "Others", "characterized"});

  for (auto& h : apps::all_hpc_apps()) {
    emu::Device dev(h.app.device_words);
    emu::Profiler prof;
    if (!h.app.run(dev, &prof)) {
      std::printf("golden run failed for %s\n", h.app.name.c_str());
      return 1;
    }
    add_row(t, h.app.name, prof);
  }

  const auto models = bench::shared_models();
  for (const nn::Network* net : {&models.lenet, &models.yololite}) {
    nn::GpuInference infer(*net);
    Rng rng(3);
    const nn::Tensor img = net->name == "LeNet"
                               ? nn::make_digit(rng).image
                               : nn::make_scene(rng).image;
    emu::Device dev(infer.device_words());
    emu::Profiler prof;
    nn::InferOptions opts;
    opts.hook = &prof;
    if (!infer.run(dev, img, opts)) {
      std::printf("golden inference failed for %s\n", net->name.c_str());
      return 1;
    }
    add_row(t, net->name, prof);
  }

  std::printf("%s\n", t.to_string().c_str());
  std::printf(
      "Paper claim: the 12 characterized opcodes cover > 70%% of dynamic\n"
      "instructions in common GPU codes (our Hotspot is lower because its\n"
      "boundary clamping uses IMIN/IMAX, which fall in Others).\n");
  return 0;
}
