// Table III (CNN rows) + Sec. VI CNN analysis: LeNet and YoloLite PVF under
// single bit-flip, RTL relative-error, and the t-MxM tile-corruption model,
// with the tolerable-vs-critical SDC split (critical = misclassification /
// misdetection against the fault-free prediction).
#include <cstdio>

#include "bench_common.hpp"
#include "common/table.hpp"
#include "nn/gpu_infer.hpp"

using namespace gpufi;
using nn::CnnFaultModel;
using nn::CnnTask;

int main() {
  bench::header("Table III (CNNs) / Sec. VI",
                "CNN PVF and critical SDCs per fault model");
  const auto db = bench::shared_database();
  const auto models = bench::shared_models();
  const std::size_t n = bench::cnn_injections();
  std::printf("LeNet holdout accuracy %.2f, mean params/layer %.0f\n",
              models.lenet_accuracy, models.lenet.mean_params_per_layer());
  std::printf("YoloLite mean params/layer %.0f\n\n",
              models.yololite.mean_params_per_layer());

  TextTable t({"network", "model", "PVF (SDC)", "critical", "crit/SDC",
               "masked", "DUE"});
  double lenet_rel_pvf = 0, lenet_tile_pvf = 0;
  double yolo_rel_pvf = 0, yolo_tile_pvf = 0;
  for (int which = 0; which < 2; ++which) {
    const nn::Network& net = which == 0 ? models.lenet : models.yololite;
    const CnnTask task =
        which == 0 ? CnnTask::Classification : CnnTask::Detection;
    for (auto model : {CnnFaultModel::SingleBitFlip,
                       CnnFaultModel::RelativeError,
                       CnnFaultModel::TiledMxM}) {
      const auto r =
          nn::run_cnn_campaign(net, task, model, &db, n, 300 + which);
      t.add_row({net.name, std::string(cnn_fault_model_name(model)),
                 TextTable::num(r.pvf(), 3),
                 TextTable::num(r.critical_rate(), 3),
                 r.sdc ? TextTable::pct(static_cast<double>(r.critical) /
                                        r.sdc)
                       : "-",
                 std::to_string(r.masked), std::to_string(r.due)});
      if (model == CnnFaultModel::RelativeError)
        (which == 0 ? lenet_rel_pvf : yolo_rel_pvf) = r.pvf();
      if (model == CnnFaultModel::TiledMxM)
        (which == 0 ? lenet_tile_pvf : yolo_tile_pvf) = r.pvf();
    }
  }
  std::printf("%s\n", t.to_string().c_str());
  std::printf(
      "t-MxM vs relative-error PVF ratio: LeNet %.1fx, YoloLite %.1fx\n"
      "(paper: ~12x for LeNet — an 8x8 tile is a large part of its small\n"
      "layers — vs ~1x for YOLOv3; and only the t-MxM model produces\n"
      "meaningful critical SDC rates: ~20%% LeNet, ~15%% YOLOv3, while\n"
      "single-thread models produced none on LeNet).\n",
      lenet_rel_pvf > 0 ? lenet_tile_pvf / lenet_rel_pvf : 0.0,
      yolo_rel_pvf > 0 ? yolo_tile_pvf / yolo_rel_pvf : 0.0);
  return 0;
}
