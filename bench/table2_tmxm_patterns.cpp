// Table II: distribution of the multi-element spatial corruption patterns
// (row, column, row+col, block, random, all) observed in the t-MxM output
// for scheduler vs pipeline injections.
#include <cstdio>

#include "bench_common.hpp"
#include "common/table.hpp"
#include "syndrome/syndrome.hpp"

using namespace gpufi;
using syndrome::Pattern;

int main() {
  bench::header("Table II", "t-MxM multi-element spatial patterns");
  const auto db = bench::shared_database();
  TextTable t({"inj. site", "row", "col", "row+col", "block", "rand", "all",
               "multi SDCs"});
  for (auto site : {rtl::Module::Scheduler, rtl::Module::PipelineRegs}) {
    const auto& s = db.tmxm(site);
    std::size_t multi = 0;
    for (std::size_t p = 1; p < syndrome::kNumPatterns; ++p)
      multi += s.counts[p];
    t.add_row({std::string(rtl::module_name(site)),
               TextTable::pct(s.multi_fraction(Pattern::Row)),
               TextTable::pct(s.multi_fraction(Pattern::Col)),
               TextTable::pct(s.multi_fraction(Pattern::RowCol)),
               TextTable::pct(s.multi_fraction(Pattern::Block)),
               TextTable::pct(s.multi_fraction(Pattern::Random)),
               TextTable::pct(s.multi_fraction(Pattern::All)),
               std::to_string(multi)});
  }
  std::printf("%s\n", t.to_string().c_str());
  std::printf(
      "Paper (Table II): pipeline injections mostly produce corrupted ROWS\n"
      "(45.4%%), scheduler injections corrupt the whole matrix (ALL 54.6%%);\n"
      "whole COLUMNS are rare for both (t-MxM is row-major).\n");
  return 0;
}
