// Performance characterization (google-benchmark) of the two execution
// levels, plus the paper's headline time argument (Sec. VI): injecting one
// fault at RTL into a real application costs hours; one software injection
// costs milliseconds — the two-level framework turns years into hours.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>

#include "apps/apps.hpp"
#include "common/thread_pool.hpp"
#include "emu/device.hpp"
#include "fparith/fp32.hpp"
#include "fparith/sfu.hpp"
#include "obs/metrics.hpp"
#include "rtlfi/campaign.hpp"
#include "rtlfi/microbench.hpp"
#include "rtl/sm.hpp"
#include "swfi/planner.hpp"
#include "swfi/swfi.hpp"

using namespace gpufi;

static void BM_FparithFma(benchmark::State& state) {
  std::uint32_t x = 0x3f800000u;
  for (auto _ : state) {
    x = fparith::fma_bits(x, 0x3f810000u, 0x3e000000u, fparith::FpOp::Fma);
    benchmark::DoNotOptimize(x);
  }
}
BENCHMARK(BM_FparithFma);

static void BM_SfuSin(benchmark::State& state) {
  std::uint32_t x = 0x3f000000u;
  for (auto _ : state) {
    x = fparith::sfu_sin_bits(x | 0x3f000000u);
    benchmark::DoNotOptimize(x);
  }
}
BENCHMARK(BM_SfuSin);

/// RTL model throughput in simulated cycles per second.
static void BM_RtlCyclesPerSecond(benchmark::State& state) {
  const auto w =
      rtlfi::make_microbenchmark(isa::Opcode::FFMA,
                                 rtlfi::InputRange::Medium, 1);
  rtl::Sm sm;
  std::uint64_t cycles = 0;
  for (auto _ : state) {
    w.setup(sm);
    const auto r = sm.run(w.program, w.dims);
    cycles += r.cycles;
    benchmark::DoNotOptimize(r.status);
  }
  state.counters["cycles/s"] = benchmark::Counter(
      static_cast<double>(cycles), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_RtlCyclesPerSecond)->Unit(benchmark::kMillisecond);

/// Emulator throughput in retired thread-instructions per second.
static void BM_EmulatorInstrPerSecond(benchmark::State& state) {
  auto h = apps::make_mxm(24);
  std::uint64_t instrs = 0;
  for (auto _ : state) {
    emu::Device dev(h.app.device_words);
    class Count : public emu::InstrumentHook {
     public:
      std::uint64_t n = 0;
      void on_count(const emu::RetireInfo&) override { ++n; }
    } counter;
    h.app.run(dev, &counter);
    instrs += counter.n;
  }
  state.counters["instr/s"] = benchmark::Counter(
      static_cast<double>(instrs), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_EmulatorInstrPerSecond)->Unit(benchmark::kMillisecond);

/// One full software injection (golden-equivalent run) on an application.
static void BM_OneSoftwareInjectionRun(benchmark::State& state) {
  auto h = apps::make_hotspot();
  for (auto _ : state) {
    emu::Device dev(h.app.device_words);
    benchmark::DoNotOptimize(h.app.run(dev, nullptr));
  }
}
BENCHMARK(BM_OneSoftwareInjectionRun)->Unit(benchmark::kMillisecond);

/// Whole-campaign throughput at a given --jobs width (arg 0 = auto: the
/// GPUFI_JOBS env or all hardware threads).
static void BM_RtlCampaignInjections(benchmark::State& state) {
  const auto w = rtlfi::make_microbenchmark(isa::Opcode::FADD,
                                            rtlfi::InputRange::Medium, 1);
  rtlfi::CampaignConfig cfg;
  cfg.module = rtl::Module::Fp32Fu;
  cfg.n_faults = 400;
  cfg.seed = 7;
  cfg.jobs = static_cast<unsigned>(state.range(0));
  std::size_t injected = 0;
  for (auto _ : state) {
    const auto r = rtlfi::run_campaign(w, cfg);
    injected += r.injected;
    benchmark::DoNotOptimize(r.masked);
  }
  state.counters["inj/s"] = benchmark::Counter(
      static_cast<double>(injected), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_RtlCampaignInjections)
    ->Arg(1)
    ->Arg(0)
    ->Unit(benchmark::kMillisecond);

namespace {

/// The parallel-engine acceptance check: times the same RTL campaign serial
/// and at the default --jobs width, verifies the counters are identical, and
/// emits one machine-readable JSON line for CI trend tracking.
void report_campaign_scaling() {
  const auto w = rtlfi::make_microbenchmark(isa::Opcode::FADD,
                                            rtlfi::InputRange::Medium, 1);
  rtlfi::CampaignConfig cfg;
  cfg.module = rtl::Module::Fp32Fu;
  cfg.n_faults = 800;
  cfg.seed = 7;
  const auto timed = [&](unsigned jobs) {
    cfg.jobs = jobs;
    const auto t0 = std::chrono::steady_clock::now();
    const auto r = rtlfi::run_campaign(w, cfg);
    const double s = std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - t0)
                         .count();
    return std::pair{r, s > 0 ? static_cast<double>(r.injected) / s : 0.0};
  };
  const auto [serial, serial_rate] = timed(1);
  const unsigned jobs = ThreadPool::default_jobs();
  const auto [parallel, parallel_rate] = timed(jobs);
  const bool identical = serial.masked == parallel.masked &&
                         serial.sdc_single == parallel.sdc_single &&
                         serial.sdc_multi == parallel.sdc_multi &&
                         serial.due == parallel.due;
  std::printf(
      "{\"bench\":\"rtl_campaign_scaling\",\"faults\":%zu,\"jobs\":%u,"
      "\"inj_per_sec_serial\":%.1f,\"inj_per_sec_jobs\":%.1f,"
      "\"speedup\":%.2f,\"deterministic\":%s}\n",
      cfg.n_faults, jobs, serial_rate, parallel_rate,
      serial_rate > 0 ? parallel_rate / serial_rate : 0.0,
      identical ? "true" : "false");
}

/// The checkpoint-fast-path acceptance check: runs the fig. 4 microbenchmark
/// set (every characterized opcode on its natural module) through the RTL
/// campaign at each acceleration level, verifies the outcome counters are
/// identical, and writes machine-readable `BENCH_rtl.json` so the perf
/// trajectory is tracked from PR to PR.
void report_rtl_acceleration() {
  struct Site {
    isa::Opcode op;
    rtl::Module module;
  };
  // Fig. 4 pairs: each opcode bombards the module that executes it.
  const Site kFig04[] = {
      {isa::Opcode::FADD, rtl::Module::Fp32Fu},
      {isa::Opcode::FMUL, rtl::Module::Fp32Fu},
      {isa::Opcode::FFMA, rtl::Module::Fp32Fu},
      {isa::Opcode::IADD, rtl::Module::IntFu},
      {isa::Opcode::IMUL, rtl::Module::IntFu},
      {isa::Opcode::IMAD, rtl::Module::IntFu},
      {isa::Opcode::FSIN, rtl::Module::Sfu},
      {isa::Opcode::FEXP, rtl::Module::Sfu},
      {isa::Opcode::GLD, rtl::Module::PipelineRegs},
      {isa::Opcode::GST, rtl::Module::PipelineRegs},
      {isa::Opcode::BRA, rtl::Module::Scheduler},
      {isa::Opcode::ISETP, rtl::Module::Scheduler},
  };
  constexpr std::size_t kFaultsPerSite = 150;
  constexpr unsigned kJobs = 1;  // serial: measures the per-injection cost

  struct ModeStats {
    std::size_t injected = 0, masked = 0, sdc = 0, due = 0, converged = 0;
    double seconds = 0;
    double rate() const { return seconds > 0 ? injected / seconds : 0.0; }
  };
  const auto run_mode = [&](rtlfi::Acceleration accel) {
    ModeStats s;
    for (const Site& site : kFig04) {
      const auto w =
          rtlfi::make_microbenchmark(site.op, rtlfi::InputRange::Medium, 1);
      rtlfi::CampaignConfig cfg;
      cfg.module = site.module;
      cfg.n_faults = kFaultsPerSite;
      cfg.seed = 7;
      cfg.jobs = kJobs;
      cfg.acceleration = accel;
      const auto t0 = std::chrono::steady_clock::now();
      const auto r = rtlfi::run_campaign(w, cfg);
      s.seconds += std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - t0)
                       .count();
      s.injected += r.injected;
      s.masked += r.masked;
      s.sdc += r.sdc_single + r.sdc_multi;
      s.due += r.due;
      s.converged += r.converged_early;
    }
    return s;
  };

  const ModeStats none = run_mode(rtlfi::Acceleration::None);
  const ModeStats ckpt = run_mode(rtlfi::Acceleration::Checkpoint);
  const ModeStats full = run_mode(rtlfi::Acceleration::CheckpointEarlyExit);
  const auto same = [&](const ModeStats& m) {
    return m.injected == none.injected && m.masked == none.masked &&
           m.sdc == none.sdc && m.due == none.due;
  };
  const bool identical = same(ckpt) && same(full);

  char json[1024];
  std::snprintf(
      json, sizeof json,
      "{\"bench\":\"rtl_acceleration\",\"sites\":%zu,"
      "\"faults_per_site\":%zu,\"jobs\":%u,"
      "\"inj_per_sec_none\":%.1f,\"inj_per_sec_checkpoint\":%.1f,"
      "\"inj_per_sec_full\":%.1f,\"speedup_checkpoint\":%.2f,"
      "\"speedup_full\":%.2f,\"converged_early\":%zu,"
      "\"identical_outcomes\":%s}",
      sizeof kFig04 / sizeof kFig04[0], kFaultsPerSite, kJobs, none.rate(),
      ckpt.rate(), full.rate(), none.rate() > 0 ? ckpt.rate() / none.rate() : 0.0,
      none.rate() > 0 ? full.rate() / none.rate() : 0.0, full.converged,
      identical ? "true" : "false");
  std::printf("%s\n", json);
  if (std::FILE* f = std::fopen("BENCH_rtl.json", "w")) {
    std::fprintf(f, "%s\n", json);
    std::fclose(f);
  }
}

/// Per-fault-model campaign throughput: stuck-at faults disable the
/// early-exit fast path and can run to the watchdog, so their injection
/// rate is the axis most likely to regress. One JSON line per run is
/// appended to `BENCH_rtl.json` next to the acceleration numbers.
void report_fault_model_throughput() {
  const auto w = rtlfi::make_microbenchmark(isa::Opcode::FFMA,
                                            rtlfi::InputRange::Medium, 1);
  const auto rate_for = [&](rtl::FaultModel model) {
    rtlfi::CampaignConfig cfg;
    cfg.module = rtl::Module::Fp32Fu;
    cfg.n_faults = 300;
    cfg.seed = 7;
    cfg.jobs = 1;
    cfg.acceleration = rtlfi::Acceleration::CheckpointEarlyExit;
    cfg.fault_model = model;
    const auto t0 = std::chrono::steady_clock::now();
    const auto r = rtlfi::run_campaign(w, cfg);
    const double s = std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - t0)
                         .count();
    return s > 0 ? static_cast<double>(r.injected) / s : 0.0;
  };
  char json[512];
  std::snprintf(
      json, sizeof json,
      "{\"bench\":\"rtl_fault_models\",\"faults\":300,\"jobs\":1,"
      "\"inj_per_sec_transient\":%.1f,\"inj_per_sec_stuck0\":%.1f,"
      "\"inj_per_sec_stuck1\":%.1f,\"inj_per_sec_burst\":%.1f}",
      rate_for(rtl::FaultModel::Transient),
      rate_for(rtl::FaultModel::StuckAt0),
      rate_for(rtl::FaultModel::StuckAt1),
      rate_for(rtl::FaultModel::IntermittentBurst));
  std::printf("%s\n", json);
  if (std::FILE* f = std::fopen("BENCH_rtl.json", "a")) {
    std::fprintf(f, "%s\n", json);
    std::fclose(f);
  }
}

/// Observability overhead check (the <=2% acceptance bar of the obs
/// subsystem): the same RTL campaign with metrics runtime-disabled versus
/// fully enabled, min-of-3 wall times per mode so scheduler noise does not
/// masquerade as instrumentation cost. Appended to `BENCH_rtl.json`.
void report_obs_overhead() {
  const auto w = rtlfi::make_microbenchmark(isa::Opcode::FFMA,
                                            rtlfi::InputRange::Medium, 1);
  rtlfi::CampaignConfig cfg;
  cfg.module = rtl::Module::Fp32Fu;
  cfg.n_faults = 300;
  cfg.seed = 7;
  cfg.jobs = 1;
  cfg.acceleration = rtlfi::Acceleration::CheckpointEarlyExit;
  const auto best_of = [&](bool obs_on) {
    obs::set_enabled(obs_on);
    double best = 0.0;
    for (int rep = 0; rep < 3; ++rep) {
      const auto t0 = std::chrono::steady_clock::now();
      const auto r = rtlfi::run_campaign(w, cfg);
      const double s = std::chrono::duration<double>(
                           std::chrono::steady_clock::now() - t0)
                           .count();
      benchmark::DoNotOptimize(r.masked);
      if (rep == 0 || s < best) best = s;
    }
    return best;
  };
  const double off = best_of(false);
  const double on = best_of(true);
  obs::set_enabled(true);
  const double overhead_pct = off > 0 ? 100.0 * (on - off) / off : 0.0;
  char json[512];
  std::snprintf(
      json, sizeof json,
      "{\"bench\":\"obs_overhead\",\"faults\":%zu,\"jobs\":1,\"reps\":3,"
      "\"seconds_obs_off\":%.4f,\"seconds_obs_on\":%.4f,"
      "\"overhead_pct\":%.2f,\"within_2pct\":%s}",
      cfg.n_faults, off, on, overhead_pct,
      overhead_pct <= 2.0 ? "true" : "false");
  std::printf("%s\n", json);
  if (std::FILE* f = std::fopen("BENCH_rtl.json", "a")) {
    std::fprintf(f, "%s\n", json);
    std::fclose(f);
  }
}

/// Software-campaign throughput baseline, written to `BENCH_sw.json`: the
/// second level of the two-level framework gets its own trend line, with the
/// obs overhead measured on the same campaign alongside.
void report_sw_throughput() {
  auto h = apps::make_mxm(24);
  swfi::Config cfg;
  cfg.model = swfi::FaultModel::SingleBitFlip;
  cfg.n_injections = 80;
  cfg.seed = 7;
  cfg.jobs = 1;
  const auto timed = [&](bool obs_on) {
    obs::set_enabled(obs_on);
    double best = 0.0;
    std::size_t injections = 0;
    for (int rep = 0; rep < 3; ++rep) {
      const auto t0 = std::chrono::steady_clock::now();
      const auto r = swfi::run_sw_campaign(h.app, cfg);
      const double s = std::chrono::duration<double>(
                           std::chrono::steady_clock::now() - t0)
                           .count();
      injections = r.sdc + r.masked + r.due;
      if (rep == 0 || s < best) best = s;
    }
    return std::pair{best, injections};
  };
  const auto [off, n_off] = timed(false);
  const auto [on, n_on] = timed(true);
  obs::set_enabled(true);
  const double rate = on > 0 ? static_cast<double>(n_on) / on : 0.0;
  const double overhead_pct = off > 0 ? 100.0 * (on - off) / off : 0.0;
  char json[512];
  std::snprintf(
      json, sizeof json,
      "{\"bench\":\"sw_campaign_injections\",\"app\":\"mxm\","
      "\"model\":\"bitflip\",\"injections\":%zu,\"jobs\":1,\"reps\":3,"
      "\"inj_per_sec\":%.1f,\"obs_overhead_pct\":%.2f,"
      "\"deterministic\":%s}",
      cfg.n_injections, rate, overhead_pct,
      n_off == n_on ? "true" : "false");
  std::printf("%s\n", json);
  if (std::FILE* f = std::fopen("BENCH_sw.json", "w")) {
    std::fprintf(f, "%s\n", json);
    std::fclose(f);
  }
}

/// The SoA-interpreter acceptance check: the same software campaign through
/// the scalar and the batched SoA execution paths, min-of-3 wall times each,
/// with the outcome counters required identical (the SIMT-equivalence
/// contract that emu_equiv_test proves instruction-by-instruction). Appended
/// to `BENCH_sw.json`.
void report_sw_soa_throughput() {
  auto h = apps::make_mxm(24);
  swfi::Config cfg;
  cfg.model = swfi::FaultModel::SingleBitFlip;
  cfg.n_injections = 80;
  cfg.seed = 7;
  cfg.jobs = 1;
  struct Timed {
    double seconds = 0;
    swfi::Result result;
  };
  const auto timed = [&](emu::Interpreter interp) {
    cfg.interpreter = interp;
    Timed t;
    for (int rep = 0; rep < 3; ++rep) {
      const auto t0 = std::chrono::steady_clock::now();
      t.result = swfi::run_sw_campaign(h.app, cfg);
      const double s = std::chrono::duration<double>(
                           std::chrono::steady_clock::now() - t0)
                           .count();
      if (rep == 0 || s < t.seconds) t.seconds = s;
    }
    return t;
  };
  const Timed scalar = timed(emu::Interpreter::Scalar);
  const Timed soa = timed(emu::Interpreter::SoA);
  const bool identical = scalar.result.masked == soa.result.masked &&
                         scalar.result.sdc == soa.result.sdc &&
                         scalar.result.due == soa.result.due;
  const auto rate = [&](const Timed& t) {
    return t.seconds > 0
               ? static_cast<double>(t.result.injections) / t.seconds
               : 0.0;
  };
  char json[512];
  std::snprintf(
      json, sizeof json,
      "{\"bench\":\"sw_soa_injections\",\"app\":\"mxm\","
      "\"model\":\"bitflip\",\"injections\":%zu,\"jobs\":1,\"reps\":3,"
      "\"inj_per_sec_scalar\":%.1f,\"inj_per_sec_soa\":%.1f,"
      "\"speedup_soa\":%.2f,\"identical_outcomes\":%s}",
      cfg.n_injections, rate(scalar), rate(soa),
      rate(scalar) > 0 ? rate(soa) / rate(scalar) : 0.0,
      identical ? "true" : "false");
  std::printf("%s\n", json);
  if (std::FILE* f = std::fopen("BENCH_sw.json", "a")) {
    std::fprintf(f, "%s\n", json);
    std::fclose(f);
  }
}

/// The planner acceptance check: a fixed-size campaign on the scalar
/// interpreter versus the same statistical question answered by the SoA
/// interpreter plus the Wilson-interval planner. The combined speedup
/// multiplies the per-injection win (SoA) by the trials the stop rule never
/// has to run — both measured against the current scalar fixed baseline;
/// the cross-PR throughput trend (the 5x bar against the pre-SoA baseline)
/// is tracked by `sw_campaign_injections` across CI artifacts.
void report_planner_savings() {
  auto h = apps::make_mxm(24);
  swfi::Config cfg;
  cfg.model = swfi::FaultModel::SingleBitFlip;
  cfg.n_injections = 400;
  cfg.seed = 7;
  cfg.jobs = 1;
  const auto best_of = [&](auto&& run) {
    double best = 0.0;
    for (int rep = 0; rep < 3; ++rep) {
      const auto t0 = std::chrono::steady_clock::now();
      run();
      const double s = std::chrono::duration<double>(
                           std::chrono::steady_clock::now() - t0)
                           .count();
      if (rep == 0 || s < best) best = s;
    }
    return best;
  };
  // Baseline: the exact-grid campaign as PR 7 ran it (scalar, every trial).
  cfg.interpreter = emu::Interpreter::Scalar;
  const double fixed_scalar_s =
      best_of([&] { swfi::run_sw_campaign(h.app, cfg); });
  // This PR: batched SoA execution plus the adaptive stop rule.
  cfg.interpreter = emu::Interpreter::SoA;
  swfi::Plan plan;
  plan.target_err = 0.06;
  plan.min_trials = 16;
  swfi::PlanResult pr;
  const double planned_soa_s =
      best_of([&] { pr = swfi::run_planned_campaign(h.app, cfg, plan); });
  const double combined =
      planned_soa_s > 0 ? fixed_scalar_s / planned_soa_s : 0.0;
  char json[512];
  std::snprintf(
      json, sizeof json,
      "{\"bench\":\"sw_planner_trials_saved\",\"app\":\"mxm\","
      "\"model\":\"bitflip\",\"planned_trials\":%zu,\"trials_run\":%zu,"
      "\"trials_saved\":%zu,\"strata\":%zu,\"pvf\":%.4f,"
      "\"pvf_half_width\":%.4f,\"seconds_fixed_scalar\":%.3f,"
      "\"seconds_planned_soa\":%.3f,\"combined_speedup\":%.2f}",
      pr.planned_trials, pr.result.injections, pr.trials_saved,
      pr.strata.size(), pr.pvf, pr.pvf_half_width, fixed_scalar_s,
      planned_soa_s, combined);
  std::printf("%s\n", json);
  if (std::FILE* f = std::fopen("BENCH_sw.json", "a")) {
    std::fprintf(f, "%s\n", json);
    std::fclose(f);
  }
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  report_campaign_scaling();
  report_rtl_acceleration();
  report_fault_model_throughput();
  report_obs_overhead();
  report_sw_throughput();
  report_sw_soa_throughput();
  report_planner_savings();
  return 0;
}
