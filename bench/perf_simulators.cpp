// Performance characterization (google-benchmark) of the two execution
// levels, plus the paper's headline time argument (Sec. VI): injecting one
// fault at RTL into a real application costs hours; one software injection
// costs milliseconds — the two-level framework turns years into hours.
#include <benchmark/benchmark.h>

#include "apps/apps.hpp"
#include "emu/device.hpp"
#include "fparith/fp32.hpp"
#include "fparith/sfu.hpp"
#include "rtlfi/microbench.hpp"
#include "rtl/sm.hpp"

using namespace gpufi;

static void BM_FparithFma(benchmark::State& state) {
  std::uint32_t x = 0x3f800000u;
  for (auto _ : state) {
    x = fparith::fma_bits(x, 0x3f810000u, 0x3e000000u, fparith::FpOp::Fma);
    benchmark::DoNotOptimize(x);
  }
}
BENCHMARK(BM_FparithFma);

static void BM_SfuSin(benchmark::State& state) {
  std::uint32_t x = 0x3f000000u;
  for (auto _ : state) {
    x = fparith::sfu_sin_bits(x | 0x3f000000u);
    benchmark::DoNotOptimize(x);
  }
}
BENCHMARK(BM_SfuSin);

/// RTL model throughput in simulated cycles per second.
static void BM_RtlCyclesPerSecond(benchmark::State& state) {
  const auto w =
      rtlfi::make_microbenchmark(isa::Opcode::FFMA,
                                 rtlfi::InputRange::Medium, 1);
  rtl::Sm sm;
  std::uint64_t cycles = 0;
  for (auto _ : state) {
    w.setup(sm);
    const auto r = sm.run(w.program, w.dims);
    cycles += r.cycles;
    benchmark::DoNotOptimize(r.status);
  }
  state.counters["cycles/s"] = benchmark::Counter(
      static_cast<double>(cycles), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_RtlCyclesPerSecond)->Unit(benchmark::kMillisecond);

/// Emulator throughput in retired thread-instructions per second.
static void BM_EmulatorInstrPerSecond(benchmark::State& state) {
  auto h = apps::make_mxm(24);
  std::uint64_t instrs = 0;
  for (auto _ : state) {
    emu::Device dev(h.app.device_words);
    class Count : public emu::InstrumentHook {
     public:
      std::uint64_t n = 0;
      void on_count(const emu::RetireInfo&) override { ++n; }
    } counter;
    h.app.run(dev, &counter);
    instrs += counter.n;
  }
  state.counters["instr/s"] = benchmark::Counter(
      static_cast<double>(instrs), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_EmulatorInstrPerSecond)->Unit(benchmark::kMillisecond);

/// One full software injection (golden-equivalent run) on an application.
static void BM_OneSoftwareInjectionRun(benchmark::State& state) {
  auto h = apps::make_hotspot();
  for (auto _ : state) {
    emu::Device dev(h.app.device_words);
    benchmark::DoNotOptimize(h.app.run(dev, nullptr));
  }
}
BENCHMARK(BM_OneSoftwareInjectionRun)->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
