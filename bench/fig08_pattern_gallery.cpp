// Fig. 8: gallery of observed multi-element spatial corruption patterns in
// the t-MxM output (ASCII rendering of real injection outcomes, one example
// per pattern class and injection site).
#include <array>
#include <cstdio>

#include "bench_common.hpp"
#include "rtlfi/campaign.hpp"
#include "rtlfi/microbench.hpp"
#include "syndrome/syndrome.hpp"

using namespace gpufi;
using syndrome::Pattern;

namespace {

void render(const rtlfi::InjectionRecord& rec) {
  std::array<bool, 64> hit{};
  for (const auto& d : rec.diffs) hit[d.index % 64] = true;
  for (unsigned r = 0; r < 8; ++r) {
    std::printf("    ");
    for (unsigned c = 0; c < 8; ++c)
      std::printf("%c", hit[r * 8 + c] ? '#' : '.');
    std::printf("\n");
  }
}

}  // namespace

int main() {
  bench::header("Fig. 8", "observed t-MxM corruption patterns");
  const std::size_t faults = bench::full_scale() ? 12000 : 2500;
  for (auto site : {rtl::Module::Scheduler, rtl::Module::PipelineRegs}) {
    const auto w = rtlfi::make_tmxm(rtlfi::TileKind::Random, 1);
    rtlfi::CampaignConfig cfg;
    cfg.module = site;
    cfg.n_faults = faults;
    cfg.seed = 77;
    const auto res = rtlfi::run_campaign(w, cfg);
    std::printf("\n### injection site: %s (%zu SDC records)\n",
                std::string(rtl::module_name(site)).c_str(),
                res.records.size());
    std::array<bool, syndrome::kNumPatterns> shown{};
    for (const auto& rec : res.records) {
      if (rec.outcome != rtlfi::Outcome::Sdc) continue;
      std::vector<std::uint32_t> idx;
      for (const auto& d : rec.diffs) idx.push_back(d.index);
      const auto p = syndrome::classify_pattern(idx, 8, 8);
      const auto pi = static_cast<std::size_t>(p);
      if (shown[pi]) continue;
      shown[pi] = true;
      std::printf("  pattern '%s' (fault in %s, bit %u, cycle %llu):\n",
                  std::string(syndrome::pattern_name(p)).c_str(),
                  rec.field.c_str(), rec.fault.bit,
                  static_cast<unsigned long long>(rec.fault.cycle));
      render(rec);
    }
  }
  std::printf(
      "\nPaper (Fig. 8): rows, columns, row+column, blocks of varying size\n"
      "and position, scattered elements, and whole-matrix corruption.\n");
  return 0;
}
