// Fig. 6: syndrome (relative error) distributions for the integer
// instructions, per injection site and input range, plus the median-shift
// analysis of Sec. V-C (MUL/MAD medians depend on the input range).
#include <cstdio>

#include "bench_common.hpp"
#include "syndrome/syndrome.hpp"

using namespace gpufi;

int main() {
  bench::header("Fig. 6", "INT instruction syndrome distributions");
  const auto db = bench::shared_database();
  for (auto op : {isa::Opcode::IADD, isa::Opcode::IMUL, isa::Opcode::IMAD}) {
    double med[3] = {0, 0, 0};
    for (auto m : {rtl::Module::IntFu, rtl::Module::PipelineRegs,
                   rtl::Module::Scheduler}) {
      for (unsigned r = 0; r < rtlfi::kNumRanges; ++r) {
        const auto range = static_cast<rtlfi::InputRange>(r);
        const auto* d = db.find(syndrome::Key{m, op, range});
        if (d == nullptr || d->count() == 0) continue;
        if (m == rtl::Module::IntFu) med[r] = d->median();
        std::printf("--- %s / %s / %s inputs: %zu syndromes, median %.3g, "
                    "Shapiro-Wilk p=%.4f\n",
                    std::string(isa::mnemonic(op)).c_str(),
                    std::string(rtl::module_name(m)).c_str(),
                    std::string(rtlfi::range_name(range)).c_str(),
                    d->count(), d->median(), d->shapiro_p());
        std::printf("%s", d->histogram().to_ascii(40).c_str());
      }
    }
    std::printf(">>> %s FU medians S/M/L: %.3g / %.3g / %.3g\n\n",
                std::string(isa::mnemonic(op)).c_str(), med[0], med[1],
                med[2]);
  }
  std::printf(
      "Paper shape: all distributions are power laws (Shapiro-Wilk p<0.05);\n"
      "the syndrome medians of the multiply-class instructions shift with\n"
      "the input range (up to ~30%%), ADD's stay put (~1%%).\n");
  return 0;
}
