// Fig. 5: distribution of the fault syndrome (relative error at the
// instruction output) for the floating-point instructions, per injection
// site (FU / pipeline / scheduler) and input range (S/M/L), rendered as
// decade histograms; plus the power-law fit and Shapiro-Wilk verdict.
#include <cstdio>

#include "bench_common.hpp"
#include "syndrome/syndrome.hpp"

using namespace gpufi;

namespace {

void print_key(const syndrome::Database& db, rtl::Module m, isa::Opcode op,
               rtlfi::InputRange r) {
  const auto* d = db.find(syndrome::Key{m, op, r});
  if (d == nullptr || d->count() == 0) return;
  std::printf("--- %s / %s / %s inputs: %zu syndromes, median %.3g",
              std::string(isa::mnemonic(op)).c_str(),
              std::string(rtl::module_name(m)).c_str(),
              std::string(rtlfi::range_name(r)).c_str(), d->count(),
              d->median());
  if (d->power_law()) {
    std::printf(", power law alpha=%.2f xmin=%.2g ks=%.3f",
                d->power_law()->alpha, d->power_law()->x_min,
                d->power_law()->ks);
  }
  std::printf(", Shapiro-Wilk p=%.4f%s\n", d->shapiro_p(),
              d->shapiro_p() < 0.05 ? " (non-Gaussian)" : "");
  std::printf("%s", d->histogram().to_ascii(40).c_str());
}

}  // namespace

int main() {
  bench::header("Fig. 5", "FP instruction syndrome distributions");
  const auto db = bench::shared_database();
  for (auto op : {isa::Opcode::FADD, isa::Opcode::FMUL, isa::Opcode::FFMA}) {
    for (auto m : {rtl::Module::Fp32Fu, rtl::Module::PipelineRegs,
                   rtl::Module::Scheduler}) {
      for (unsigned r = 0; r < rtlfi::kNumRanges; ++r)
        print_key(db, m, op, static_cast<rtlfi::InputRange>(r));
    }
  }
  std::printf(
      "\nPaper shapes: peaked (power-law) distributions, not Gaussian; only\n"
      "a small tail (<~1%%) beyond 1e2 relative error; MUL/FMA medians move\n"
      "with the input range while ADD's barely does.\n");
  return 0;
}
