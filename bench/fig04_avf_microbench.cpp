// Fig. 4: AVF of RTL injections in the functional units (FP32, INT, SFU),
// the scheduler, and the pipeline registers for each of the 12 SASS
// instructions — SDCs split into single/multiple-thread, plus DUEs. Values
// are averaged over the S/M/L input ranges as in the paper.
#include <chrono>
#include <cstdio>

#include "bench_common.hpp"
#include "common/table.hpp"
#include "rtlfi/campaign.hpp"
#include "rtlfi/microbench.hpp"

using namespace gpufi;
using rtlfi::InputRange;

int main() {
  bench::header("Fig. 4", "micro-benchmark AVF per module per instruction");
  const std::size_t faults =
      bench::full_scale() ? 4000 : 250;  // per (module, range)

  const isa::Opcode ops[] = {
      isa::Opcode::FADD, isa::Opcode::FMUL, isa::Opcode::FFMA,
      isa::Opcode::IADD, isa::Opcode::IMUL, isa::Opcode::IMAD,
      isa::Opcode::FSIN, isa::Opcode::FEXP, isa::Opcode::GLD,
      isa::Opcode::GST,  isa::Opcode::BRA,  isa::Opcode::ISETP,
  };

  auto fu_of = [](isa::Opcode op) -> std::optional<rtl::Module> {
    switch (isa::op_class(op)) {
      case isa::OpClass::Fp32: return rtl::Module::Fp32Fu;
      case isa::OpClass::Int32: return rtl::Module::IntFu;
      case isa::OpClass::Special: return rtl::Module::Sfu;
      default: return std::nullopt;  // FUs idle for memory/control ops
    }
  };

  TextTable t({"instr", "module", "SDC-1thr", "SDC-multi", "DUE",
               "multi-frac", "mean-thr", "+-95%"});
  std::uint64_t seed = 11;
  double max_range_spread = 0.0;
  std::size_t total_injected = 0;
  const auto wall_start = std::chrono::steady_clock::now();
  for (auto op : ops) {
    std::vector<std::pair<const char*, rtl::Module>> modules;
    if (auto fu = fu_of(op)) modules.push_back({"FU", *fu});
    if (isa::op_class(op) == isa::OpClass::Special)
      modules.push_back({"SFU-ctl", rtl::Module::SfuCtl});
    modules.push_back({"sched", rtl::Module::Scheduler});
    modules.push_back({"pipe", rtl::Module::PipelineRegs});
    for (auto [label, module] : modules) {
      rtlfi::CampaignResult merged;
      double avf_min = 1.0, avf_max = 0.0;
      for (unsigned r = 0; r < rtlfi::kNumRanges; ++r) {
        const auto w = rtlfi::make_microbenchmark(
            op, static_cast<InputRange>(r), 50 + r);
        rtlfi::CampaignConfig cfg;
        cfg.module = module;
        cfg.n_faults = faults;
        cfg.seed = ++seed;
        const auto res = rtlfi::run_campaign(w, cfg);
        avf_min = std::min(avf_min, res.avf());
        avf_max = std::max(avf_max, res.avf());
        merged.merge(res);
      }
      max_range_spread = std::max(max_range_spread, avf_max - avf_min);
      total_injected += merged.injected;
      t.add_row({std::string(isa::mnemonic(op)), label,
                 TextTable::pct(static_cast<double>(merged.sdc_single) /
                                merged.injected),
                 TextTable::pct(static_cast<double>(merged.sdc_multi) /
                                merged.injected),
                 TextTable::pct(merged.avf_due()),
                 TextTable::pct(merged.multi_fraction()),
                 TextTable::num(merged.mean_corrupted_threads(), 3),
                 TextTable::pct(merged.margin_of_error())});
    }
  }
  const double wall = std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - wall_start)
                          .count();
  std::printf("%s\n", t.to_string().c_str());
  std::printf(
      "wall-clock %.1fs for %zu injections on %u jobs (%.0f injections/s; "
      "results are jobs-independent)\n",
      wall, total_injected, bench::jobs(),
      wall > 0 ? static_cast<double>(total_injected) / wall : 0.0);
  std::printf(
      "max AVF spread across S/M/L input ranges: %.1f%% (paper: < 5%%)\n"
      "Paper shapes to check: FP32-FU AVF below INT-FU AVF (3x larger\n"
      "unit); FU faults produce SDCs, pipeline faults produce the DUEs;\n"
      "FU SDCs are single-thread; scheduler and SFU-controller SDCs hit\n"
      "multiple threads.\n",
      100.0 * max_range_spread);

  // Sec. V-B: "the modules AVF should be weighted with the module relative
  // size" to estimate where real SDCs/DUEs come from. Use the FFMA/IMAD
  // rows as the representative arithmetic mix.
  std::printf("\nmodule-size-weighted outcome shares (FFMA+IMAD mix):\n");
  rtlfi::CampaignResult fu_fp, fu_int, sched, pipe;
  for (auto [op, dst] : {std::pair{isa::Opcode::FFMA, &fu_fp},
                         std::pair{isa::Opcode::IMAD, &fu_int}}) {
    for (auto [module, acc] :
         {std::pair{rtl::Module::Fp32Fu, dst},
          std::pair{rtl::Module::Scheduler, &sched},
          std::pair{rtl::Module::PipelineRegs, &pipe}}) {
      const auto m = op == isa::Opcode::IMAD &&
                             module == rtl::Module::Fp32Fu
                         ? rtl::Module::IntFu
                         : module;
      const auto w = rtlfi::make_microbenchmark(
          op, rtlfi::InputRange::Medium, 9);
      rtlfi::CampaignConfig cfg;
      cfg.module = m;
      cfg.n_faults = faults;
      cfg.seed = ++seed;
      acc->merge(rtlfi::run_campaign(w, cfg));
    }
  }
  const auto& L = rtl::layouts();
  struct WRow {
    const char* name;
    const rtlfi::CampaignResult* r;
    std::size_t ffs;
  };
  const WRow wrows[] = {
      {"FP32 FU", &fu_fp, L.fp32_fu.layout.bits()},
      {"INT FU", &fu_int, L.int_fu.layout.bits()},
      {"Scheduler", &sched, L.scheduler.layout.bits()},
      {"Pipeline", &pipe, L.pipeline.layout.bits()},
  };
  double sdc_total = 0, due_total = 0;
  for (const auto& row : wrows) {
    sdc_total += row.r->avf_sdc() * static_cast<double>(row.ffs);
    due_total += row.r->avf_due() * static_cast<double>(row.ffs);
  }
  for (const auto& row : wrows) {
    const double sdc_share =
        sdc_total > 0
            ? row.r->avf_sdc() * static_cast<double>(row.ffs) / sdc_total
            : 0;
    const double due_share =
        due_total > 0
            ? row.r->avf_due() * static_cast<double>(row.ffs) / due_total
            : 0;
    std::printf("  %-10s %6zu FFs  ->  %5.1f%% of SDCs, %5.1f%% of DUEs\n",
                row.name, row.ffs, 100 * sdc_share, 100 * due_share);
  }
  std::printf(
      "(paper: functional units, having a huge size and high AVF, are the\n"
      "likely source of most SDCs; pipelines the likely cause of most DUEs)\n");
  return 0;
}
