// Ablation (ours): data-vs-control criticality inside the pipeline
// registers. The paper attributes the pipeline's DUEs and multi-thread
// SDCs to the ~16% of control flip-flops; here every SDC record carries
// the role of the field that was hit, so the attribution is measured
// directly rather than inferred.
#include <cstdio>
#include <map>

#include "bench_common.hpp"
#include "common/table.hpp"
#include "rtlfi/campaign.hpp"
#include "rtlfi/microbench.hpp"

using namespace gpufi;

int main() {
  bench::header("Ablation", "pipeline data vs control field criticality");
  const std::size_t faults = bench::full_scale() ? 20000 : 3000;
  rtlfi::CampaignResult merged;
  std::uint64_t seed = 90;
  for (auto op : {isa::Opcode::FADD, isa::Opcode::IMAD, isa::Opcode::GLD}) {
    const auto w =
        rtlfi::make_microbenchmark(op, rtlfi::InputRange::Medium, 1);
    rtlfi::CampaignConfig cfg;
    cfg.module = rtl::Module::PipelineRegs;
    cfg.n_faults = faults / 3;
    cfg.seed = ++seed;
    cfg.keep_all_records = true;  // DUE records carry the field role too
    merged.merge(rtlfi::run_campaign(w, cfg));
  }

  // Outcome split per field role.
  std::size_t data_sdc = 0, data_due = 0, ctl_sdc = 0, ctl_due = 0;
  std::size_t data_multi = 0, ctl_multi = 0;
  std::map<std::string, unsigned> due_fields;
  for (const auto& rec : merged.records) {
    const bool ctl = rec.role == rtl::FieldRole::Control;
    if (rec.outcome == rtlfi::Outcome::Due) {
      (ctl ? ctl_due : data_due) += 1;
      // Field names are indexed (e.g. "stg_wen[3]"); strip the index so the
      // report groups by structure.
      auto base = rec.field.substr(0, rec.field.find('['));
      ++due_fields[base];
    } else if (rec.outcome == rtlfi::Outcome::Sdc) {
      (ctl ? ctl_sdc : data_sdc) += 1;
      if (rec.corrupted_threads > 1) (ctl ? ctl_multi : data_multi) += 1;
    }
  }

  const auto& layout = rtl::layouts().pipeline.layout;
  const double data_bits = static_cast<double>(layout.data_bits());
  const double ctl_bits = static_cast<double>(layout.control_bits());
  const double per_inj =
      static_cast<double>(merged.injected);

  TextTable t({"field role", "share of FFs", "SDC rate", "multi-thr SDCs",
               "DUE rate", "DUE rate per FF (norm.)"});
  const double data_due_rate = data_due / per_inj;
  const double ctl_due_rate = ctl_due / per_inj;
  t.add_row({"data", TextTable::pct(data_bits / layout.bits()),
             TextTable::pct(data_sdc / per_inj), std::to_string(data_multi),
             TextTable::pct(data_due_rate),
             TextTable::num(data_due_rate / (data_bits / layout.bits()), 3)});
  t.add_row({"control", TextTable::pct(ctl_bits / layout.bits()),
             TextTable::pct(ctl_sdc / per_inj), std::to_string(ctl_multi),
             TextTable::pct(ctl_due_rate),
             TextTable::num(ctl_due_rate / (ctl_bits / layout.bits()), 3)});
  std::printf("%s\n", t.to_string().c_str());

  std::printf("top DUE-causing pipeline structures:\n");
  std::vector<std::pair<unsigned, std::string>> sorted;
  for (const auto& [name, cnt] : due_fields) sorted.push_back({cnt, name});
  std::sort(sorted.rbegin(), sorted.rend());
  for (std::size_t i = 0; i < std::min<std::size_t>(6, sorted.size()); ++i)
    std::printf("  %-20s %u\n", sorted[i].second.c_str(), sorted[i].first);
  std::printf(
      "\nPaper claim reproduced: the small control portion of the pipeline\n"
      "registers causes a disproportionate share of DUEs and of the\n"
      "multi-thread SDCs.\n");
  return 0;
}
