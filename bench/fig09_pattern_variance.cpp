// Fig. 9: the relative error is not uniform across the corrupted elements
// of a multi-element pattern — print per-element relative-error spreads for
// an observed row pattern and an observed block pattern, plus the fitted
// two-level power-law sampler the software injector uses.
#include <cstdio>

#include "bench_common.hpp"
#include "rtlfi/campaign.hpp"
#include "rtlfi/microbench.hpp"
#include "syndrome/syndrome.hpp"

using namespace gpufi;
using syndrome::Pattern;

int main() {
  bench::header("Fig. 9", "relative-error spread within spatial patterns");
  const std::size_t faults = bench::full_scale() ? 12000 : 3000;
  const auto w = rtlfi::make_tmxm(rtlfi::TileKind::Random, 1);
  rtlfi::CampaignConfig cfg;
  cfg.module = rtl::Module::PipelineRegs;
  cfg.n_faults = faults;
  cfg.seed = 78;
  auto res = rtlfi::run_campaign(w, cfg);
  {
    rtlfi::CampaignConfig s = cfg;
    s.module = rtl::Module::Scheduler;
    res.merge(rtlfi::run_campaign(w, s));
  }

  bool shown_row = false, shown_block = false;
  for (const auto& rec : res.records) {
    if (rec.outcome != rtlfi::Outcome::Sdc || rec.diffs.size() < 3) continue;
    std::vector<std::uint32_t> idx;
    for (const auto& d : rec.diffs) idx.push_back(d.index);
    const auto p = syndrome::classify_pattern(idx, 8, 8);
    const bool want = (p == Pattern::Row && !shown_row) ||
                      (p == Pattern::Block && !shown_block) ||
                      (p == Pattern::All && !shown_block);
    if (!want) continue;
    if (p == Pattern::Row) shown_row = true;
    else shown_block = true;
    double lo = 1e30, hi = 0, sum = 0;
    std::printf("\n%s pattern, %zu elements, per-element relative errors:\n ",
                std::string(syndrome::pattern_name(p)).c_str(),
                rec.diffs.size());
    for (const auto& d : rec.diffs) {
      std::printf(" %.2e", d.rel_error);
      lo = std::min(lo, d.rel_error);
      hi = std::max(hi, d.rel_error);
      sum += d.rel_error;
    }
    std::printf("\n  min %.2e  mean %.2e  max %.2e  (spread %.1fx)\n", lo,
                sum / rec.diffs.size(), hi, hi / std::max(lo, 1e-30));
    if (shown_row && shown_block) break;
  }

  // The software-side sampler that reproduces this behaviour.
  const auto db = bench::shared_database();
  Rng rng(5);
  std::printf("\ntwo-level power-law sampler (Sec. V-D) examples:\n");
  for (int i = 0; i < 3; ++i) {
    const auto tc = db.sample_tile_corruption(8, 8, rng);
    double lo = 1e30, hi = 0;
    for (const auto& e : tc.elements) {
      lo = std::min(lo, e.rel_error);
      hi = std::max(hi, e.rel_error);
    }
    std::printf("  sampled '%s' with %zu elements, rel errors %.2e..%.2e\n",
                std::string(syndrome::pattern_name(tc.pattern)).c_str(),
                tc.elements.size(), lo, hi);
  }
  std::printf(
      "\nPaper shape: the per-element relative errors of one pattern span\n"
      "orders of magnitude (power-law distributed within the record's\n"
      "range), so the injector samples a range first, then each element.\n");
  return 0;
}
