#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>

#include "common/thread_pool.hpp"
#include "core/gpufi.hpp"

namespace gpufi::bench {

/// True when GPUFI_FULL=1: paper-scale campaigns (hours) instead of the
/// single-core quick defaults (seconds to a couple of minutes per bench).
inline bool full_scale() {
  const char* v = std::getenv("GPUFI_FULL");
  return v != nullptr && v[0] == '1';
}

/// Campaign scale used by the RTL experiment benches.
inline core::RtlCharacterizationConfig rtl_config() {
  return full_scale() ? core::RtlCharacterizationConfig::paper_scale()
                      : core::RtlCharacterizationConfig{};
}

/// Directory for cached artifacts (syndrome DB, trained weights); created
/// next to the working directory so repeated bench runs share the expensive
/// characterization.
inline std::string data_dir() { return "gpufi_data"; }

/// Loads (or builds once) the RTL syndrome database.
inline syndrome::Database shared_database() {
  const std::string path =
      data_dir() + (full_scale() ? "/syndromes_full.db" : "/syndromes.db");
  std::printf("[bench] syndrome database: %s\n", path.c_str());
  return core::ensure_syndrome_database(path, rtl_config());
}

/// Loads (or trains once) the CNNs.
inline core::Models shared_models() {
  std::printf("[bench] models: %s\n", data_dir().c_str());
  return core::ensure_models(data_dir());
}

/// Campaign parallelism used by the benches: the configs' jobs = 0 default
/// already resolves to GPUFI_JOBS / all hardware threads; this helper is for
/// printing the effective width (results are identical for every value).
inline unsigned jobs() { return ThreadPool::default_jobs(); }

/// Software-injection count per application/model.
inline std::size_t sw_injections() { return full_scale() ? 6000 : 250; }

/// CNN injection count per model.
inline std::size_t cnn_injections() { return full_scale() ? 6000 : 150; }

inline void header(const char* id, const char* what) {
  std::printf("\n=============================================================\n");
  std::printf("%s — %s\n", id, what);
  std::printf("(scale: %s; set GPUFI_FULL=1 for paper-scale campaigns)\n",
              full_scale() ? "paper" : "quick");
  std::printf("=============================================================\n");
}

}  // namespace gpufi::bench
