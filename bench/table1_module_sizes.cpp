// Table I: evaluated modules, flip-flop counts, type, and the instructions
// that use each module — printed from the RTL model's actual layouts,
// side by side with the paper's FlexGripPlus numbers.
#include <cstdio>

#include "bench_common.hpp"
#include "common/table.hpp"
#include "rtl/layouts.hpp"

using namespace gpufi;

int main() {
  bench::header("Table I", "module sizes and instruction coverage");
  struct Row {
    rtl::Module m;
    unsigned paper;
    const char* type;
    const char* instrs;
  };
  const Row rows[] = {
      {rtl::Module::Fp32Fu, 4451, "Execution/Data", "FADD, FMUL, FFMA"},
      {rtl::Module::IntFu, 1542, "Execution/Data", "IADD, IMUL, IMAD"},
      {rtl::Module::Sfu, 3231, "Execution/Data", "FSIN, FEXP"},
      {rtl::Module::SfuCtl, 190, "Control", "FSIN, FEXP"},
      {rtl::Module::Scheduler, 3358, "Control", "ALL"},
      {rtl::Module::PipelineRegs, 10949, "Control/Data", "ALL"},
  };
  TextTable t({"module", "FFs (ours)", "FFs (paper)", "delta", "data/ctl",
               "type", "instructions"});
  std::size_t total = 0;
  for (const auto& r : rows) {
    const auto& l = rtl::layouts().of(r.m);
    total += l.bits();
    char delta[32], split[48];
    std::snprintf(delta, sizeof delta, "%+.1f%%",
                  100.0 * (static_cast<double>(l.bits()) - r.paper) /
                      r.paper);
    std::snprintf(split, sizeof split, "%zu/%zu", l.data_bits(),
                  l.control_bits());
    t.add_row({std::string(rtl::module_name(r.m)),
               std::to_string(l.bits()), std::to_string(r.paper), delta,
               split, r.type, r.instrs});
  }
  std::printf("%s\n", t.to_string().c_str());

  const auto& p = rtl::layouts().pipeline.layout;
  std::printf("total faultable flip-flops: %zu\n", total);
  std::printf(
      "pipeline registers data share: %.1f%% (paper: ~84%% operands, ~16%%\n"
      "control signals; the control share drives the DUE and multi-thread\n"
      "behaviour in both models)\n",
      100.0 * static_cast<double>(p.data_bits()) / p.bits());
  return 0;
}
