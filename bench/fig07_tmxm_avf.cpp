// Fig. 7: AVF of the t-MxM mini-app for scheduler and pipeline injections,
// split into DUEs and single/multiple-element SDCs, for the Max, Zero and
// Random input tiles.
#include <cstdio>

#include "bench_common.hpp"
#include "common/table.hpp"
#include "rtlfi/campaign.hpp"
#include "rtlfi/microbench.hpp"

using namespace gpufi;
using rtlfi::TileKind;

int main() {
  bench::header("Fig. 7", "t-MxM AVF (scheduler vs pipeline, per tile kind)");
  const std::size_t faults = bench::full_scale() ? 12000 : 900;
  TextTable t({"site", "tile", "SDC-1el", "SDC-multi", "DUE", "multi-frac",
               "mean elems", "+-95%"});
  double sched_sdc_z = 0, sched_sdc_r = 0, pipe_sdc_z = 0, pipe_sdc_r = 0;
  std::uint64_t seed = 31;
  for (auto site : {rtl::Module::Scheduler, rtl::Module::PipelineRegs}) {
    for (auto kind : {TileKind::Max, TileKind::Zero, TileKind::Random}) {
      rtlfi::CampaignResult merged;
      for (std::uint64_t v = 1; v <= 2; ++v) {
        const auto w = rtlfi::make_tmxm(kind, v);
        rtlfi::CampaignConfig cfg;
        cfg.module = site;
        cfg.n_faults = faults / 2;
        cfg.seed = ++seed;
        merged.merge(rtlfi::run_campaign(w, cfg));
      }
      t.add_row({std::string(rtl::module_name(site)),
                 std::string(rtlfi::tile_name(kind)),
                 TextTable::pct(static_cast<double>(merged.sdc_single) /
                                merged.injected),
                 TextTable::pct(static_cast<double>(merged.sdc_multi) /
                                merged.injected),
                 TextTable::pct(merged.avf_due()),
                 TextTable::pct(merged.multi_fraction()),
                 TextTable::num(merged.mean_corrupted_elements(), 3),
                 TextTable::pct(merged.margin_of_error())});
      const double sdc = merged.avf_sdc();
      if (site == rtl::Module::Scheduler) {
        (kind == TileKind::Zero ? sched_sdc_z : sched_sdc_r) = sdc;
      } else {
        (kind == TileKind::Zero ? pipe_sdc_z : pipe_sdc_r) = sdc;
      }
    }
  }
  std::printf("%s\n", t.to_string().c_str());
  std::printf(
      "Paper shapes: a large share of t-MxM SDCs corrupt multiple output\n"
      "elements (>=70%% scheduler, >=50%% pipeline in the paper); the Zero\n"
      "tile masks pipeline data faults (Z SDC AVF %.2f%% < R %.2f%%).\n"
      "Known deviation (see EXPERIMENTS.md): the paper's scheduler AVF\n"
      "exceeds its pipeline AVF for t-MxM; in our model the pipeline's\n"
      "operand collectors dominate its live state and keep it higher.\n",
      100 * pipe_sdc_z, 100 * pipe_sdc_r);
  return 0;
}
