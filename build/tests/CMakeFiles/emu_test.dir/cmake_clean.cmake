file(REMOVE_RECURSE
  "CMakeFiles/emu_test.dir/emu_test.cpp.o"
  "CMakeFiles/emu_test.dir/emu_test.cpp.o.d"
  "emu_test"
  "emu_test.pdb"
  "emu_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/emu_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
