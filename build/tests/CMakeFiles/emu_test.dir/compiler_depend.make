# Empty compiler generated dependencies file for emu_test.
# This may be replaced when dependencies are built.
