# Empty dependencies file for crosslevel_test.
# This may be replaced when dependencies are built.
