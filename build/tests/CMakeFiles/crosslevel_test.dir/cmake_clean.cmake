file(REMOVE_RECURSE
  "CMakeFiles/crosslevel_test.dir/crosslevel_test.cpp.o"
  "CMakeFiles/crosslevel_test.dir/crosslevel_test.cpp.o.d"
  "crosslevel_test"
  "crosslevel_test.pdb"
  "crosslevel_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crosslevel_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
