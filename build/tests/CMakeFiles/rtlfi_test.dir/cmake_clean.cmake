file(REMOVE_RECURSE
  "CMakeFiles/rtlfi_test.dir/rtlfi_test.cpp.o"
  "CMakeFiles/rtlfi_test.dir/rtlfi_test.cpp.o.d"
  "rtlfi_test"
  "rtlfi_test.pdb"
  "rtlfi_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rtlfi_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
