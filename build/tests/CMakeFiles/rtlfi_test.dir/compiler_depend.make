# Empty compiler generated dependencies file for rtlfi_test.
# This may be replaced when dependencies are built.
