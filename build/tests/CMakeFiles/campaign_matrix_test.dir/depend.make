# Empty dependencies file for campaign_matrix_test.
# This may be replaced when dependencies are built.
