file(REMOVE_RECURSE
  "CMakeFiles/campaign_matrix_test.dir/campaign_matrix_test.cpp.o"
  "CMakeFiles/campaign_matrix_test.dir/campaign_matrix_test.cpp.o.d"
  "campaign_matrix_test"
  "campaign_matrix_test.pdb"
  "campaign_matrix_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/campaign_matrix_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
