# Empty compiler generated dependencies file for swfi_test.
# This may be replaced when dependencies are built.
