file(REMOVE_RECURSE
  "CMakeFiles/swfi_test.dir/swfi_test.cpp.o"
  "CMakeFiles/swfi_test.dir/swfi_test.cpp.o.d"
  "swfi_test"
  "swfi_test.pdb"
  "swfi_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/swfi_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
