# Empty dependencies file for fparith_test.
# This may be replaced when dependencies are built.
