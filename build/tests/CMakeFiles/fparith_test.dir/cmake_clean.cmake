file(REMOVE_RECURSE
  "CMakeFiles/fparith_test.dir/fparith_test.cpp.o"
  "CMakeFiles/fparith_test.dir/fparith_test.cpp.o.d"
  "fparith_test"
  "fparith_test.pdb"
  "fparith_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fparith_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
