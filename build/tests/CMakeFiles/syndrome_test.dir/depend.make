# Empty dependencies file for syndrome_test.
# This may be replaced when dependencies are built.
