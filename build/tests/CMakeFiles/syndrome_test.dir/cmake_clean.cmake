file(REMOVE_RECURSE
  "CMakeFiles/syndrome_test.dir/syndrome_test.cpp.o"
  "CMakeFiles/syndrome_test.dir/syndrome_test.cpp.o.d"
  "syndrome_test"
  "syndrome_test.pdb"
  "syndrome_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/syndrome_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
