# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/exec_test[1]_include.cmake")
include("/root/repo/build/tests/fparith_test[1]_include.cmake")
include("/root/repo/build/tests/isa_test[1]_include.cmake")
include("/root/repo/build/tests/emu_test[1]_include.cmake")
include("/root/repo/build/tests/rtl_test[1]_include.cmake")
include("/root/repo/build/tests/rtlfi_test[1]_include.cmake")
include("/root/repo/build/tests/syndrome_test[1]_include.cmake")
include("/root/repo/build/tests/swfi_test[1]_include.cmake")
include("/root/repo/build/tests/apps_test[1]_include.cmake")
include("/root/repo/build/tests/nn_test[1]_include.cmake")
include("/root/repo/build/tests/crosslevel_test[1]_include.cmake")
include("/root/repo/build/tests/campaign_matrix_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
