file(REMOVE_RECURSE
  "CMakeFiles/ablation_pipeline_split.dir/ablation_pipeline_split.cpp.o"
  "CMakeFiles/ablation_pipeline_split.dir/ablation_pipeline_split.cpp.o.d"
  "ablation_pipeline_split"
  "ablation_pipeline_split.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_pipeline_split.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
