# Empty compiler generated dependencies file for ablation_pipeline_split.
# This may be replaced when dependencies are built.
