file(REMOVE_RECURSE
  "CMakeFiles/fig09_pattern_variance.dir/fig09_pattern_variance.cpp.o"
  "CMakeFiles/fig09_pattern_variance.dir/fig09_pattern_variance.cpp.o.d"
  "fig09_pattern_variance"
  "fig09_pattern_variance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_pattern_variance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
