# Empty compiler generated dependencies file for fig09_pattern_variance.
# This may be replaced when dependencies are built.
