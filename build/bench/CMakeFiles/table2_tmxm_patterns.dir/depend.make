# Empty dependencies file for table2_tmxm_patterns.
# This may be replaced when dependencies are built.
