file(REMOVE_RECURSE
  "CMakeFiles/table2_tmxm_patterns.dir/table2_tmxm_patterns.cpp.o"
  "CMakeFiles/table2_tmxm_patterns.dir/table2_tmxm_patterns.cpp.o.d"
  "table2_tmxm_patterns"
  "table2_tmxm_patterns.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_tmxm_patterns.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
