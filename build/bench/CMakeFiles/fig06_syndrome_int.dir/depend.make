# Empty dependencies file for fig06_syndrome_int.
# This may be replaced when dependencies are built.
