file(REMOVE_RECURSE
  "CMakeFiles/fig06_syndrome_int.dir/fig06_syndrome_int.cpp.o"
  "CMakeFiles/fig06_syndrome_int.dir/fig06_syndrome_int.cpp.o.d"
  "fig06_syndrome_int"
  "fig06_syndrome_int.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_syndrome_int.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
