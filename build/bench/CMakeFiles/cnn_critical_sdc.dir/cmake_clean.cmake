file(REMOVE_RECURSE
  "CMakeFiles/cnn_critical_sdc.dir/cnn_critical_sdc.cpp.o"
  "CMakeFiles/cnn_critical_sdc.dir/cnn_critical_sdc.cpp.o.d"
  "cnn_critical_sdc"
  "cnn_critical_sdc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cnn_critical_sdc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
