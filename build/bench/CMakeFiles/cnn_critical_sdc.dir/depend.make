# Empty dependencies file for cnn_critical_sdc.
# This may be replaced when dependencies are built.
