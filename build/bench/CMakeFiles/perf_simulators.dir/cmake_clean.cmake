file(REMOVE_RECURSE
  "CMakeFiles/perf_simulators.dir/perf_simulators.cpp.o"
  "CMakeFiles/perf_simulators.dir/perf_simulators.cpp.o.d"
  "perf_simulators"
  "perf_simulators.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perf_simulators.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
