# Empty dependencies file for perf_simulators.
# This may be replaced when dependencies are built.
