# Empty compiler generated dependencies file for fig05_syndrome_fp.
# This may be replaced when dependencies are built.
