file(REMOVE_RECURSE
  "CMakeFiles/fig05_syndrome_fp.dir/fig05_syndrome_fp.cpp.o"
  "CMakeFiles/fig05_syndrome_fp.dir/fig05_syndrome_fp.cpp.o.d"
  "fig05_syndrome_fp"
  "fig05_syndrome_fp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_syndrome_fp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
