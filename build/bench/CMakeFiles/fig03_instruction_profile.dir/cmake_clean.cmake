file(REMOVE_RECURSE
  "CMakeFiles/fig03_instruction_profile.dir/fig03_instruction_profile.cpp.o"
  "CMakeFiles/fig03_instruction_profile.dir/fig03_instruction_profile.cpp.o.d"
  "fig03_instruction_profile"
  "fig03_instruction_profile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig03_instruction_profile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
