# Empty dependencies file for fig03_instruction_profile.
# This may be replaced when dependencies are built.
