file(REMOVE_RECURSE
  "CMakeFiles/fig07_tmxm_avf.dir/fig07_tmxm_avf.cpp.o"
  "CMakeFiles/fig07_tmxm_avf.dir/fig07_tmxm_avf.cpp.o.d"
  "fig07_tmxm_avf"
  "fig07_tmxm_avf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_tmxm_avf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
