# Empty compiler generated dependencies file for fig07_tmxm_avf.
# This may be replaced when dependencies are built.
