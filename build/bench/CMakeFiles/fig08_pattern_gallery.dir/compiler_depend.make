# Empty compiler generated dependencies file for fig08_pattern_gallery.
# This may be replaced when dependencies are built.
