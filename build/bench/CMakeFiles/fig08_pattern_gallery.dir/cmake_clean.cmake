file(REMOVE_RECURSE
  "CMakeFiles/fig08_pattern_gallery.dir/fig08_pattern_gallery.cpp.o"
  "CMakeFiles/fig08_pattern_gallery.dir/fig08_pattern_gallery.cpp.o.d"
  "fig08_pattern_gallery"
  "fig08_pattern_gallery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_pattern_gallery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
