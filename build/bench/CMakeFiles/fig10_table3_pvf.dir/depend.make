# Empty dependencies file for fig10_table3_pvf.
# This may be replaced when dependencies are built.
