file(REMOVE_RECURSE
  "CMakeFiles/fig10_table3_pvf.dir/fig10_table3_pvf.cpp.o"
  "CMakeFiles/fig10_table3_pvf.dir/fig10_table3_pvf.cpp.o.d"
  "fig10_table3_pvf"
  "fig10_table3_pvf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_table3_pvf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
