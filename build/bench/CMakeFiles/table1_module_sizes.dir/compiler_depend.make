# Empty compiler generated dependencies file for table1_module_sizes.
# This may be replaced when dependencies are built.
