file(REMOVE_RECURSE
  "CMakeFiles/table1_module_sizes.dir/table1_module_sizes.cpp.o"
  "CMakeFiles/table1_module_sizes.dir/table1_module_sizes.cpp.o.d"
  "table1_module_sizes"
  "table1_module_sizes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_module_sizes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
