# Empty compiler generated dependencies file for fig04_avf_microbench.
# This may be replaced when dependencies are built.
