file(REMOVE_RECURSE
  "CMakeFiles/fig04_avf_microbench.dir/fig04_avf_microbench.cpp.o"
  "CMakeFiles/fig04_avf_microbench.dir/fig04_avf_microbench.cpp.o.d"
  "fig04_avf_microbench"
  "fig04_avf_microbench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_avf_microbench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
