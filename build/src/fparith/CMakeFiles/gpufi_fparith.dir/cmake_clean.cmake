file(REMOVE_RECURSE
  "CMakeFiles/gpufi_fparith.dir/fp32.cpp.o"
  "CMakeFiles/gpufi_fparith.dir/fp32.cpp.o.d"
  "CMakeFiles/gpufi_fparith.dir/sfu.cpp.o"
  "CMakeFiles/gpufi_fparith.dir/sfu.cpp.o.d"
  "libgpufi_fparith.a"
  "libgpufi_fparith.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpufi_fparith.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
