
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fparith/fp32.cpp" "src/fparith/CMakeFiles/gpufi_fparith.dir/fp32.cpp.o" "gcc" "src/fparith/CMakeFiles/gpufi_fparith.dir/fp32.cpp.o.d"
  "/root/repo/src/fparith/sfu.cpp" "src/fparith/CMakeFiles/gpufi_fparith.dir/sfu.cpp.o" "gcc" "src/fparith/CMakeFiles/gpufi_fparith.dir/sfu.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/gpufi_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
