file(REMOVE_RECURSE
  "libgpufi_fparith.a"
)
