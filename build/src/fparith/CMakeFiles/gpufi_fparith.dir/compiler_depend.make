# Empty compiler generated dependencies file for gpufi_fparith.
# This may be replaced when dependencies are built.
