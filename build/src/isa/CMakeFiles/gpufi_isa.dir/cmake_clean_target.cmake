file(REMOVE_RECURSE
  "libgpufi_isa.a"
)
