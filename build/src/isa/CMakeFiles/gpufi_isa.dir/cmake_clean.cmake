file(REMOVE_RECURSE
  "CMakeFiles/gpufi_isa.dir/isa.cpp.o"
  "CMakeFiles/gpufi_isa.dir/isa.cpp.o.d"
  "CMakeFiles/gpufi_isa.dir/semantics.cpp.o"
  "CMakeFiles/gpufi_isa.dir/semantics.cpp.o.d"
  "libgpufi_isa.a"
  "libgpufi_isa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpufi_isa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
