# Empty dependencies file for gpufi_isa.
# This may be replaced when dependencies are built.
