# Empty compiler generated dependencies file for gpufi_swfi.
# This may be replaced when dependencies are built.
