file(REMOVE_RECURSE
  "libgpufi_swfi.a"
)
