file(REMOVE_RECURSE
  "CMakeFiles/gpufi_swfi.dir/swfi.cpp.o"
  "CMakeFiles/gpufi_swfi.dir/swfi.cpp.o.d"
  "libgpufi_swfi.a"
  "libgpufi_swfi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpufi_swfi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
