file(REMOVE_RECURSE
  "libgpufi_apps.a"
)
