# Empty dependencies file for gpufi_apps.
# This may be replaced when dependencies are built.
