file(REMOVE_RECURSE
  "CMakeFiles/gpufi_apps.dir/apps.cpp.o"
  "CMakeFiles/gpufi_apps.dir/apps.cpp.o.d"
  "libgpufi_apps.a"
  "libgpufi_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpufi_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
