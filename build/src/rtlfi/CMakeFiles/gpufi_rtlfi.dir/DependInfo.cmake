
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rtlfi/campaign.cpp" "src/rtlfi/CMakeFiles/gpufi_rtlfi.dir/campaign.cpp.o" "gcc" "src/rtlfi/CMakeFiles/gpufi_rtlfi.dir/campaign.cpp.o.d"
  "/root/repo/src/rtlfi/microbench.cpp" "src/rtlfi/CMakeFiles/gpufi_rtlfi.dir/microbench.cpp.o" "gcc" "src/rtlfi/CMakeFiles/gpufi_rtlfi.dir/microbench.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/rtl/CMakeFiles/gpufi_rtl.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/gpufi_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/exec/CMakeFiles/gpufi_exec.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/gpufi_common.dir/DependInfo.cmake"
  "/root/repo/build/src/fparith/CMakeFiles/gpufi_fparith.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
