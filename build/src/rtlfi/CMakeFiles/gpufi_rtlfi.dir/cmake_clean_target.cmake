file(REMOVE_RECURSE
  "libgpufi_rtlfi.a"
)
