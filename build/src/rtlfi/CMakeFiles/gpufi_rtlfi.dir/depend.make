# Empty dependencies file for gpufi_rtlfi.
# This may be replaced when dependencies are built.
