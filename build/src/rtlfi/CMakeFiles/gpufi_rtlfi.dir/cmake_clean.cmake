file(REMOVE_RECURSE
  "CMakeFiles/gpufi_rtlfi.dir/campaign.cpp.o"
  "CMakeFiles/gpufi_rtlfi.dir/campaign.cpp.o.d"
  "CMakeFiles/gpufi_rtlfi.dir/microbench.cpp.o"
  "CMakeFiles/gpufi_rtlfi.dir/microbench.cpp.o.d"
  "libgpufi_rtlfi.a"
  "libgpufi_rtlfi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpufi_rtlfi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
