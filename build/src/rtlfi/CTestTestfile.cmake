# CMake generated Testfile for 
# Source directory: /root/repo/src/rtlfi
# Build directory: /root/repo/build/src/rtlfi
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
