file(REMOVE_RECURSE
  "CMakeFiles/gpufi_rtl.dir/layouts.cpp.o"
  "CMakeFiles/gpufi_rtl.dir/layouts.cpp.o.d"
  "CMakeFiles/gpufi_rtl.dir/sm.cpp.o"
  "CMakeFiles/gpufi_rtl.dir/sm.cpp.o.d"
  "CMakeFiles/gpufi_rtl.dir/state.cpp.o"
  "CMakeFiles/gpufi_rtl.dir/state.cpp.o.d"
  "libgpufi_rtl.a"
  "libgpufi_rtl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpufi_rtl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
