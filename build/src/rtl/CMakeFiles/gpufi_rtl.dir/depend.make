# Empty dependencies file for gpufi_rtl.
# This may be replaced when dependencies are built.
