file(REMOVE_RECURSE
  "libgpufi_rtl.a"
)
