file(REMOVE_RECURSE
  "CMakeFiles/gpufi_common.dir/bitvector.cpp.o"
  "CMakeFiles/gpufi_common.dir/bitvector.cpp.o.d"
  "CMakeFiles/gpufi_common.dir/histogram.cpp.o"
  "CMakeFiles/gpufi_common.dir/histogram.cpp.o.d"
  "CMakeFiles/gpufi_common.dir/powerlaw.cpp.o"
  "CMakeFiles/gpufi_common.dir/powerlaw.cpp.o.d"
  "CMakeFiles/gpufi_common.dir/statistics.cpp.o"
  "CMakeFiles/gpufi_common.dir/statistics.cpp.o.d"
  "CMakeFiles/gpufi_common.dir/table.cpp.o"
  "CMakeFiles/gpufi_common.dir/table.cpp.o.d"
  "CMakeFiles/gpufi_common.dir/thread_pool.cpp.o"
  "CMakeFiles/gpufi_common.dir/thread_pool.cpp.o.d"
  "libgpufi_common.a"
  "libgpufi_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpufi_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
