file(REMOVE_RECURSE
  "libgpufi_common.a"
)
