# Empty compiler generated dependencies file for gpufi_common.
# This may be replaced when dependencies are built.
