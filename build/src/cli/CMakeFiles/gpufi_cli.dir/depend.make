# Empty dependencies file for gpufi_cli.
# This may be replaced when dependencies are built.
