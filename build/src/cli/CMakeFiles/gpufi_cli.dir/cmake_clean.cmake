file(REMOVE_RECURSE
  "CMakeFiles/gpufi_cli.dir/main.cpp.o"
  "CMakeFiles/gpufi_cli.dir/main.cpp.o.d"
  "gpufi"
  "gpufi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpufi_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
