file(REMOVE_RECURSE
  "CMakeFiles/gpufi_nn.dir/gpu_infer.cpp.o"
  "CMakeFiles/gpufi_nn.dir/gpu_infer.cpp.o.d"
  "CMakeFiles/gpufi_nn.dir/network.cpp.o"
  "CMakeFiles/gpufi_nn.dir/network.cpp.o.d"
  "libgpufi_nn.a"
  "libgpufi_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpufi_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
