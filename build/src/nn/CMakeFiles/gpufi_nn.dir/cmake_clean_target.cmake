file(REMOVE_RECURSE
  "libgpufi_nn.a"
)
