# Empty dependencies file for gpufi_nn.
# This may be replaced when dependencies are built.
