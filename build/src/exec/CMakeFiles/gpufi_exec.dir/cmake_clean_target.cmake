file(REMOVE_RECURSE
  "libgpufi_exec.a"
)
