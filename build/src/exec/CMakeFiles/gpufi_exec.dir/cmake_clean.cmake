file(REMOVE_RECURSE
  "CMakeFiles/gpufi_exec.dir/engine.cpp.o"
  "CMakeFiles/gpufi_exec.dir/engine.cpp.o.d"
  "libgpufi_exec.a"
  "libgpufi_exec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpufi_exec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
