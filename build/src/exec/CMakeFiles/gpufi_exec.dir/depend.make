# Empty dependencies file for gpufi_exec.
# This may be replaced when dependencies are built.
