# Empty compiler generated dependencies file for gpufi_syndrome.
# This may be replaced when dependencies are built.
