file(REMOVE_RECURSE
  "libgpufi_syndrome.a"
)
