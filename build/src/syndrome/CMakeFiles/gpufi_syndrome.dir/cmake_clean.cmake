file(REMOVE_RECURSE
  "CMakeFiles/gpufi_syndrome.dir/syndrome.cpp.o"
  "CMakeFiles/gpufi_syndrome.dir/syndrome.cpp.o.d"
  "libgpufi_syndrome.a"
  "libgpufi_syndrome.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpufi_syndrome.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
