# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("exec")
subdirs("isa")
subdirs("fparith")
subdirs("rtl")
subdirs("rtlfi")
subdirs("syndrome")
subdirs("emu")
subdirs("swfi")
subdirs("apps")
subdirs("nn")
subdirs("core")
subdirs("cli")
