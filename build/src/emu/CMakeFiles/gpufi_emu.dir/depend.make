# Empty dependencies file for gpufi_emu.
# This may be replaced when dependencies are built.
