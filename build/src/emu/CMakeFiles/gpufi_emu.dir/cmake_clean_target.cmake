file(REMOVE_RECURSE
  "libgpufi_emu.a"
)
