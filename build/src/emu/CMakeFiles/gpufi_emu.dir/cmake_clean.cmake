file(REMOVE_RECURSE
  "CMakeFiles/gpufi_emu.dir/device.cpp.o"
  "CMakeFiles/gpufi_emu.dir/device.cpp.o.d"
  "CMakeFiles/gpufi_emu.dir/profiler.cpp.o"
  "CMakeFiles/gpufi_emu.dir/profiler.cpp.o.d"
  "libgpufi_emu.a"
  "libgpufi_emu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpufi_emu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
