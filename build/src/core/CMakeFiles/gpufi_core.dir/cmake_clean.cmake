file(REMOVE_RECURSE
  "CMakeFiles/gpufi_core.dir/gpufi.cpp.o"
  "CMakeFiles/gpufi_core.dir/gpufi.cpp.o.d"
  "libgpufi_core.a"
  "libgpufi_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpufi_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
