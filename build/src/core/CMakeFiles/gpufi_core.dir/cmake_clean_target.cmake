file(REMOVE_RECURSE
  "libgpufi_core.a"
)
