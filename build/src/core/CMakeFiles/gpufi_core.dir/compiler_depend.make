# Empty compiler generated dependencies file for gpufi_core.
# This may be replaced when dependencies are built.
