# Empty dependencies file for hpc_reliability.
# This may be replaced when dependencies are built.
