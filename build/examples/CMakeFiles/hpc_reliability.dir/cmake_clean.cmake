file(REMOVE_RECURSE
  "CMakeFiles/hpc_reliability.dir/hpc_reliability.cpp.o"
  "CMakeFiles/hpc_reliability.dir/hpc_reliability.cpp.o.d"
  "hpc_reliability"
  "hpc_reliability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hpc_reliability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
