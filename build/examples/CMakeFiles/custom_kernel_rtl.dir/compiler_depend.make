# Empty compiler generated dependencies file for custom_kernel_rtl.
# This may be replaced when dependencies are built.
