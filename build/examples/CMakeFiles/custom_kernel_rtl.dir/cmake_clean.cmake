file(REMOVE_RECURSE
  "CMakeFiles/custom_kernel_rtl.dir/custom_kernel_rtl.cpp.o"
  "CMakeFiles/custom_kernel_rtl.dir/custom_kernel_rtl.cpp.o.d"
  "custom_kernel_rtl"
  "custom_kernel_rtl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/custom_kernel_rtl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
