# Empty dependencies file for cnn_reliability.
# This may be replaced when dependencies are built.
