file(REMOVE_RECURSE
  "CMakeFiles/cnn_reliability.dir/cnn_reliability.cpp.o"
  "CMakeFiles/cnn_reliability.dir/cnn_reliability.cpp.o.d"
  "cnn_reliability"
  "cnn_reliability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cnn_reliability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
